// The generalized DHT model of paper §2.1, as an abstract interface.
//
// The paper deliberately does not fix the overlay: it requires only (i) an
// identifier space, (ii) a deterministic owner mapping with surrogate
// routing for absent IDs, and (iii) hop-by-hop routing between any two
// nodes. Everything above — the DOLR reference service and the hypercube
// keyword-search layer — is written against this interface, and the
// repository ships two implementations (Chord-style successor routing and
// Pastry-style prefix routing) to demonstrate the claim.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dht/node_id.hpp"
#include "net/transport.hpp"
#include "sim/network.hpp"

namespace hkws::dht {

class OverlayNode;

class Overlay {
 public:
  virtual ~Overlay() = default;

  // --- Identifier space ---------------------------------------------------

  virtual const RingSpace& space() const = 0;

  /// Hashes an arbitrary label onto the identifier space.
  RingId key_of(std::string_view label, std::uint64_t salt) const;

  // --- Membership -----------------------------------------------------------

  virtual std::size_t size() const = 0;
  virtual bool is_live(sim::EndpointId endpoint) const = 0;
  virtual std::optional<RingId> ring_id_of(sim::EndpointId endpoint) const = 0;
  virtual sim::EndpointId endpoint_of(RingId id) const = 0;
  /// Live node ids in increasing order.
  virtual std::vector<RingId> live_ids() const = 0;

  /// Per-node state shared by all overlays (the DOLR reference store).
  virtual OverlayNode& state_of(RingId id) = 0;
  virtual const OverlayNode& state_of(RingId id) const = 0;

  // --- Ownership / routing ---------------------------------------------------

  /// Ground-truth owner of `key` under this overlay's surrogate rule
  /// (successor for Chord, numerically closest for Pastry). Global
  /// knowledge — used by experiments and tests, never by routed protocols.
  virtual RingId owner_of(RingId key) const = 0;

  struct RouteResult {
    RingId owner;  ///< node the message arrived at
    int hops;      ///< overlay hops traversed (0 if origin owns the key)
  };
  using RouteCallback = std::function<void(const RouteResult&)>;

  /// Routes a `kind` message of `payload_bytes` from the peer at `from`
  /// toward the owner of `key`, hop by hop using node-local state only;
  /// invokes `on_owner` at the owner as a simulated event.
  virtual void route(sim::EndpointId from, RingId key, std::string kind,
                     std::size_t payload_bytes, RouteCallback on_owner) = 0;

  /// Synchronous walk of the hop sequence route() would take; charges
  /// per-hop messages to metrics under `kind`.
  virtual RouteResult lookup_now(RingId start, RingId key,
                                 const std::string& kind) = 0;

  /// Nodes that should hold replicas of content owned by `owner` (its
  /// successor list / leaf set), at most `count` of them, excluding owner.
  virtual std::vector<RingId> replica_targets(RingId owner,
                                              int count) const = 0;

  /// The message fabric this overlay routes over: the deterministic
  /// simulator (sim::Network) or the real socket runtime (net::TcpTransport).
  /// Every protocol layer above reaches the wire exclusively through this.
  virtual net::Transport& transport() = 0;
};

}  // namespace hkws::dht
