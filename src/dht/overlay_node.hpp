// Per-peer state common to every overlay implementation: identity and the
// local reference store Refs_v of the DOLR scheme (paper §2.1). Concrete
// overlays (ChordNode, PastryNode) add their own routing state on top.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/keyword.hpp"
#include "dht/node_id.hpp"
#include "sim/network.hpp"

namespace hkws::dht {

/// A reference (sigma, u): object `sigma` has a replica at peer `u`,
/// stored under ring key `key` = L(sigma).
struct StoredRef {
  RingId key = 0;
  ObjectId object = kInvalidObject;
  sim::EndpointId holder = 0;

  auto operator<=>(const StoredRef&) const = default;
};

class OverlayNode {
 public:
  OverlayNode(RingId id, sim::EndpointId endpoint)
      : id_(id), endpoint_(endpoint) {}
  virtual ~OverlayNode() = default;

  OverlayNode(const OverlayNode&) = delete;
  OverlayNode& operator=(const OverlayNode&) = delete;

  RingId id() const noexcept { return id_; }
  sim::EndpointId endpoint() const noexcept { return endpoint_; }

  // --- Reference store (Refs_v) ----------------------------------------

  /// Adds a reference. Returns true if the object had no references here
  /// before (i.e., this is the first published copy — only then does the
  /// paper's Insert create the keyword index entry).
  bool add_ref(const StoredRef& ref);

  /// Removes a reference. Returns true if that was the last reference to
  /// the object here (the keyword index entry must then be deleted).
  bool remove_ref(ObjectId object, sim::EndpointId holder);

  /// All known replica holders for `object` (empty if unknown here).
  std::vector<sim::EndpointId> refs_of(ObjectId object) const;

  /// Whether the reference (object, holder) is stored here. Cheap; used by
  /// the incremental replica repair to find missing copies without
  /// re-pushing everything.
  bool has_ref(ObjectId object, sim::EndpointId holder) const;

  std::size_t ref_count() const noexcept { return ref_count_; }

  /// Removes and returns every reference whose ring key fails `belongs`;
  /// used for key handoff on join and graceful leave.
  template <typename BelongsFn>
  std::vector<StoredRef> extract_refs_if(BelongsFn&& belongs) {
    std::vector<StoredRef> moved;
    for (auto it = refs_.begin(); it != refs_.end();) {
      if (!belongs(it->second.key)) {
        for (auto holder : it->second.holders)
          moved.push_back(StoredRef{it->second.key, it->first, holder});
        ref_count_ -= it->second.holders.size();
        it = refs_.erase(it);
      } else {
        ++it;
      }
    }
    return moved;
  }

  /// Snapshot of every reference stored here (replication / handoff).
  std::vector<StoredRef> all_refs() const;

 private:
  struct RefEntry {
    RingId key = 0;
    std::set<sim::EndpointId> holders;
  };

  RingId id_;
  sim::EndpointId endpoint_;
  std::map<ObjectId, RefEntry> refs_;
  std::size_t ref_count_ = 0;
};

}  // namespace hkws::dht
