// Pastry-specific per-peer routing state (Rowstron & Druschel, Middleware
// 2001): a prefix routing table (one row per identifier digit, one column
// per digit value) and a leaf set of the numerically closest nodes on each
// side. The DOLR reference store lives in the OverlayNode base.
#pragma once

#include <optional>
#include <vector>

#include "dht/overlay_node.hpp"

namespace hkws::dht {

class PastryNode final : public OverlayNode {
 public:
  /// @param digit_count  identifier digits (id_bits / digit_bits)
  /// @param digit_values 2^digit_bits columns per routing-table row
  PastryNode(RingId id, sim::EndpointId endpoint, int digit_count,
             int digit_values);

  // --- Routing table ----------------------------------------------------

  /// Entry for nodes sharing `row` leading digits with us and having digit
  /// value `column` at position `row`; nullopt when none is known.
  std::optional<RingId> table_entry(int row, int column) const;
  void set_table_entry(int row, int column, std::optional<RingId> node);

  int rows() const noexcept { return static_cast<int>(table_.size()); }
  int columns() const noexcept { return digit_values_; }

  // --- Leaf set -----------------------------------------------------------

  /// Numerically closest known nodes clockwise of us, nearest first.
  const std::vector<RingId>& leaf_cw() const noexcept { return leaf_cw_; }
  /// Numerically closest known nodes counterclockwise of us, nearest first.
  const std::vector<RingId>& leaf_ccw() const noexcept { return leaf_ccw_; }
  void set_leaf_sets(std::vector<RingId> cw, std::vector<RingId> ccw);

  /// All distinct nodes this peer knows (leaf sets + routing table).
  std::vector<RingId> known_nodes() const;

 private:
  int digit_values_;
  std::vector<std::vector<std::optional<RingId>>> table_;
  std::vector<RingId> leaf_cw_;
  std::vector<RingId> leaf_ccw_;
};

}  // namespace hkws::dht
