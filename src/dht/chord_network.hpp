// The Chord-style overlay realizing the paper's generalized DHT model
// (§2.1): an a-bit identifier circle, a deterministic owner mapping with
// surrogate routing (owner of key k = successor(k)), and hop-by-hop routing
// over the simulated network. Upper layers (the DOLR reference service and
// the hypercube keyword-index layer) address peers only by ring key.
//
// Simulation notes:
//  * route() — the path every measured operation takes — is fully
//    event-driven: each overlay hop is one simulated network message.
//  * Ring maintenance (join, stabilize, fix-fingers) manipulates node state
//    synchronously but charges the messages it would cost to the
//    "dht.maintenance" counters; experiments never measure maintenance
//    latency, only its message volume.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dht/chord_node.hpp"
#include "dht/node_id.hpp"
#include "dht/overlay.hpp"
#include "sim/network.hpp"

namespace hkws::dht {

class ChordNetwork final : public Overlay {
 public:
  struct Config {
    int id_bits = 32;            ///< a — ring identifier width
    int successor_list_size = 8; ///< fault-tolerance fan-out
    std::uint64_t seed = 42;     ///< node-id hashing salt
    int max_route_hops = 256;    ///< loop guard for routing with stale state
  };

  ChordNetwork(net::Transport& net, Config cfg);

  // --- Membership -------------------------------------------------------

  /// Creates the first node of a fresh ring. Returns its ring id.
  RingId create_ring(sim::EndpointId endpoint);

  /// Adds `endpoint` to the ring via `bootstrap` (any live node) using the
  /// Chord join protocol: find successor, adopt links, take over the keys
  /// now owned. Followed by stabilize rounds to refresh other nodes.
  RingId join(sim::EndpointId endpoint, sim::EndpointId bootstrap);

  /// Graceful departure: hands references to the successor, splices the
  /// ring. The endpoint stops receiving messages.
  void leave(sim::EndpointId endpoint);

  /// Abrupt failure: the node vanishes with its state. Other nodes discover
  /// this through timeouts during routing/stabilization.
  void fail(sim::EndpointId endpoint);

  /// Runs one stabilization round at every live node (successor liveness
  /// check + predecessor reconciliation + successor-list refresh +
  /// finger repair). Returns messages charged.
  std::uint64_t stabilize_all();

  /// Convenience: builds a well-formed ring for `n` peers (endpoints
  /// 1..n) with globally computed fingers/successors — the steady state an
  /// idle ring converges to. Experiments start from this.
  static ChordNetwork build(net::Transport& net, std::size_t n, Config cfg);

  // --- Introspection (Overlay interface + Chord extras) --------------------

  std::size_t size() const override { return by_id_.size(); }
  const RingSpace& space() const override { return space_; }
  bool is_live(sim::EndpointId endpoint) const override;
  std::optional<RingId> ring_id_of(sim::EndpointId endpoint) const override;
  sim::EndpointId endpoint_of(RingId id) const override;
  ChordNode& node(RingId id);
  const ChordNode& node(RingId id) const;
  ChordNode& node_at(sim::EndpointId endpoint);
  OverlayNode& state_of(RingId id) override { return node(id); }
  const OverlayNode& state_of(RingId id) const override { return node(id); }

  /// Live ring ids in increasing order.
  std::vector<RingId> live_ids() const override;

  // --- Ownership / routing ----------------------------------------------

  /// Ground-truth owner of `key`: the first live node clockwise from key
  /// (surrogate routing S). O(log n); global knowledge — used by placement
  /// experiments and as a test oracle, never by routed protocols.
  RingId owner_of(RingId key) const override;

  /// Routes a `kind` message of `payload_bytes` from the node at
  /// `from` toward the owner of `key`, hop by hop via fingers; invokes
  /// `on_owner` at the owner (as a simulated event). Dead fingers are
  /// skipped (modeling timeout + successor-list fallback). If the origin
  /// endpoint itself is dead, the message is dropped silently.
  void route(sim::EndpointId from, RingId key, std::string kind,
             std::size_t payload_bytes, RouteCallback on_owner) override;

  /// Synchronous lookup walking the same hop sequence route() would take,
  /// returning the owner and hop count without scheduling events. Charges
  /// `kind` messages to metrics. Used by maintenance and by tests that
  /// check route() against an immediate walk.
  RouteResult lookup_now(RingId start, RingId key,
                         const std::string& kind) override;

  /// Replicas of content owned by `owner` go to its first `count` live
  /// successors.
  std::vector<RingId> replica_targets(RingId owner, int count) const override;

  net::Transport& transport() override { return net_; }

 private:
  RingId unique_ring_id(sim::EndpointId endpoint);
  void fix_all_fingers(ChordNode& n, bool charge);

  /// Next hop toward `key` from `at`, using live links only. `final` set
  /// means the hop target IS the owner (decided here, at its predecessor,
  /// per Chord — the target must not re-evaluate: with failed-but-not-yet-
  /// repaired predecessors it could not prove ownership locally).
  struct Hop {
    RingId next;
    bool final;
  };
  std::optional<Hop> next_hop(const ChordNode& at, RingId key) const;
  void route_step(std::shared_ptr<struct RouteState> state, RingId at,
                  bool arrived_final);

  net::Transport& net_;
  Config cfg_;
  RingSpace space_;
  std::map<RingId, std::unique_ptr<ChordNode>> by_id_;  // live nodes
  std::map<sim::EndpointId, RingId> by_endpoint_;       // live nodes
  std::set<RingId> dead_;  // ids that failed (for timeout modeling)
};

}  // namespace hkws::dht
