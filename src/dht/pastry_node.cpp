#include "dht/pastry_node.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hkws::dht {

PastryNode::PastryNode(RingId id, sim::EndpointId endpoint, int digit_count,
                       int digit_values)
    : OverlayNode(id, endpoint), digit_values_(digit_values) {
  if (digit_count < 1 || digit_values < 2)
    throw std::invalid_argument("PastryNode: bad table geometry");
  table_.assign(static_cast<std::size_t>(digit_count),
                std::vector<std::optional<RingId>>(
                    static_cast<std::size_t>(digit_values)));
}

std::optional<RingId> PastryNode::table_entry(int row, int column) const {
  return table_.at(static_cast<std::size_t>(row))
      .at(static_cast<std::size_t>(column));
}

void PastryNode::set_table_entry(int row, int column,
                                 std::optional<RingId> node) {
  table_.at(static_cast<std::size_t>(row))
      .at(static_cast<std::size_t>(column)) = node;
}

void PastryNode::set_leaf_sets(std::vector<RingId> cw,
                               std::vector<RingId> ccw) {
  leaf_cw_ = std::move(cw);
  leaf_ccw_ = std::move(ccw);
}

std::vector<RingId> PastryNode::known_nodes() const {
  std::set<RingId> known(leaf_cw_.begin(), leaf_cw_.end());
  known.insert(leaf_ccw_.begin(), leaf_ccw_.end());
  for (const auto& row : table_)
    for (const auto& entry : row)
      if (entry.has_value()) known.insert(*entry);
  known.erase(id());
  return {known.begin(), known.end()};
}

}  // namespace hkws::dht
