// The DOLR (distributed object location and routing) reference service of
// the paper's generalized DHT model (§2.1): the mapping L from object IDs
// to ring keys, and the Insert / Delete / Read operations that place, drop,
// and fetch references (sigma, u) at the owner node of L(sigma).
//
// Insert reports whether the reference was the *first* copy of the object,
// and Delete whether it removed the *last* one — the keyword-index layer
// creates/destroys its index entry exactly on those transitions (§3.3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/keyword.hpp"
#include "dht/overlay.hpp"
#include "dht/overlay_node.hpp"

namespace hkws::dht {

class Dolr {
 public:
  struct Config {
    /// Number of nodes holding each reference: the owner plus
    /// (replication_factor - 1) of its successors. 1 = no replication.
    int replication_factor = 1;
  };

  Dolr(Overlay& overlay, Config cfg);
  explicit Dolr(Overlay& overlay);  ///< default config (no replication)

  /// The mapping L: deterministic, uniform object -> ring key.
  RingId object_key(ObjectId object) const;

  struct InsertResult {
    bool first_copy = false;  ///< no reference to the object existed before
    RingId owner = 0;
    int hops = 0;
  };
  using InsertCallback = std::function<void(const InsertResult&)>;

  /// Publishes a copy of `object` held by `publisher`: routes the reference
  /// to the owner of L(object) and replicates it to successors.
  void insert(sim::EndpointId publisher, ObjectId object,
              InsertCallback done = nullptr);

  struct DeleteResult {
    bool last_copy = false;  ///< the reference store no longer knows the object
    RingId owner = 0;
    int hops = 0;
  };
  using DeleteCallback = std::function<void(const DeleteResult&)>;

  /// Withdraws the copy of `object` held by `publisher`.
  void remove(sim::EndpointId publisher, ObjectId object,
              DeleteCallback done = nullptr);

  struct ReadResult {
    std::vector<sim::EndpointId> holders;  ///< replica holders (may be empty)
    RingId owner = 0;
    int hops = 0;
  };
  using ReadCallback = std::function<void(const ReadResult&)>;

  /// Resolves `object` to its replica holders by routing to the owner of
  /// L(object); the reply travels directly back to the reader (1 message).
  void read(sim::EndpointId reader, ObjectId object, ReadCallback done);

  /// Re-replicates every reference owned by live nodes to the current
  /// successor sets; call after membership changes to restore the
  /// replication invariant. Returns references copied.
  std::uint64_t repair_replicas();

  /// Incremental variant for the maintenance plane: pushes at most
  /// `max_copies` replica copies, and only to targets that are actually
  /// missing the reference (so repeated calls converge instead of
  /// re-flooding). Returns copies sent; 0 means the replication invariant
  /// holds for every live owner. Idempotent: add_ref on an existing copy is
  /// a no-op.
  std::uint64_t repair_replicas(std::size_t max_copies);

  /// Replica copies currently missing across all live owners — the repair
  /// backlog the plane reports as a gauge and drains with the call above.
  std::size_t replication_backlog() const;

  int replication_factor() const noexcept { return cfg_.replication_factor; }

  Overlay& overlay() noexcept { return overlay_; }
  const Overlay& overlay() const noexcept { return overlay_; }

 private:
  void replicate(RingId owner, const StoredRef& ref);
  /// One replica copy: direct message owner -> target endpoint.
  void replicate_to(RingId owner, sim::EndpointId target,
                    const StoredRef& ref);
  /// Invokes fn(owner_id, target_ep, ref) for every replica copy a live
  /// owner should hold at a target that does not have it yet.
  template <typename Fn>
  void for_each_missing_copy(Fn&& fn) const;

  Overlay& overlay_;
  Config cfg_;
};

}  // namespace hkws::dht
