#include "dht/overlay.hpp"

#include "common/hash.hpp"

namespace hkws::dht {

RingId Overlay::key_of(std::string_view label, std::uint64_t salt) const {
  return space().clamp(hash_bytes(label, salt));
}

}  // namespace hkws::dht
