// Ring identifier arithmetic for the generalized DHT (paper §2.1).
// Node and object keys live on a 2^a identifier circle; ownership follows
// the Chord convention: the owner of key k is successor(k), which realizes
// the paper's surrogate routing S(v) — absent IDs are served by the next
// existing node clockwise.
#pragma once

#include <cstdint>

#include "common/bitops.hpp"

namespace hkws::dht {

/// A point on the 2^a identifier circle (only the low `a` bits are used).
using RingId = std::uint64_t;

/// Ring geometry: bit width and modular helpers.
class RingSpace {
 public:
  /// @param bits  a, the identifier width; 1 <= bits <= 64
  explicit constexpr RingSpace(int bits) : bits_(bits) {}

  constexpr int bits() const noexcept { return bits_; }

  /// Truncates an arbitrary 64-bit value onto the ring.
  constexpr RingId clamp(std::uint64_t x) const noexcept {
    return bits_ >= 64 ? x : (x & ((1ULL << bits_) - 1));
  }

  /// (from + 2^k) mod 2^a — finger targets.
  constexpr RingId add_pow2(RingId from, int k) const noexcept {
    return clamp(from + (k >= 64 ? 0 : (1ULL << k)));
  }

  /// Clockwise distance from `from` to `to` on the circle.
  constexpr std::uint64_t distance(RingId from, RingId to) const noexcept {
    return clamp(to - from);
  }

  /// True iff x lies in the half-open clockwise interval (lo, hi].
  /// When lo == hi the interval is the full circle (everything qualifies):
  /// that is the single-node case, where the node owns all keys.
  constexpr bool in_interval_oc(RingId x, RingId lo, RingId hi) const noexcept {
    x = clamp(x); lo = clamp(lo); hi = clamp(hi);
    if (lo == hi) return true;
    return distance(lo, x) != 0 && distance(lo, x) <= distance(lo, hi);
  }

  /// True iff x lies in the open clockwise interval (lo, hi).
  constexpr bool in_interval_oo(RingId x, RingId lo, RingId hi) const noexcept {
    x = clamp(x); lo = clamp(lo); hi = clamp(hi);
    if (lo == hi) return x != lo;  // full circle minus the endpoint
    const std::uint64_t dx = distance(lo, x);
    return dx != 0 && dx < distance(lo, hi);
  }

 private:
  int bits_;
};

}  // namespace hkws::dht
