#include "dht/dolr.hpp"

#include <stdexcept>

#include "common/hash.hpp"

namespace hkws::dht {

Dolr::Dolr(Overlay& overlay, Config cfg) : overlay_(overlay), cfg_(cfg) {
  if (cfg.replication_factor < 1)
    throw std::invalid_argument("Dolr: replication_factor must be >= 1");
}

Dolr::Dolr(Overlay& overlay) : Dolr(overlay, Config{}) {}

RingId Dolr::object_key(ObjectId object) const {
  return overlay_.space().clamp(mix64(object ^ seeds::kObjectToDht));
}

void Dolr::replicate_to(RingId owner, sim::EndpointId target,
                        const StoredRef& ref) {
  const OverlayNode& n = overlay_.state_of(owner);
  overlay_.transport().send(n.endpoint(), target, "dolr.replicate",
                      sizeof(StoredRef), [this, target, ref] {
                        // The replica target may have left in flight.
                        if (auto id = overlay_.ring_id_of(target))
                          overlay_.state_of(*id).add_ref(ref);
                      });
}

void Dolr::replicate(RingId owner, const StoredRef& ref) {
  // Copy the reference to the overlay's replica set for this owner (Chord:
  // successors; Pastry: leaf-set neighbors). One direct message per copy.
  for (RingId s :
       overlay_.replica_targets(owner, cfg_.replication_factor - 1))
    replicate_to(owner, overlay_.endpoint_of(s), ref);
}

void Dolr::insert(sim::EndpointId publisher, ObjectId object,
                  InsertCallback done) {
  const RingId key = object_key(object);
  const StoredRef ref{key, object, publisher};
  overlay_.route(publisher, key, "dolr.insert", sizeof(StoredRef),
                 [this, ref, done = std::move(done)](
                     const Overlay::RouteResult& r) {
                   const bool first = overlay_.state_of(r.owner).add_ref(ref);
                   replicate(r.owner, ref);
                   if (done) done(InsertResult{first, r.owner, r.hops});
                 });
}

void Dolr::remove(sim::EndpointId publisher, ObjectId object,
                  DeleteCallback done) {
  const RingId key = object_key(object);
  overlay_.route(publisher, key, "dolr.delete", sizeof(StoredRef),
                 [this, object, publisher, done = std::move(done)](
                     const Overlay::RouteResult& r) {
                   OverlayNode& owner = overlay_.state_of(r.owner);
                   const bool last = owner.remove_ref(object, publisher);
                   // Propagate the removal to the replica set.
                   for (RingId s : overlay_.replica_targets(
                            r.owner, cfg_.replication_factor - 1)) {
                     const auto ep = overlay_.endpoint_of(s);
                     overlay_.transport().send(
                         owner.endpoint(), ep, "dolr.unreplicate",
                         sizeof(ObjectId), [this, ep, object, publisher] {
                           if (auto id = overlay_.ring_id_of(ep))
                             overlay_.state_of(*id).remove_ref(object, publisher);
                         });
                   }
                   if (done) done(DeleteResult{last, r.owner, r.hops});
                 });
}

void Dolr::read(sim::EndpointId reader, ObjectId object, ReadCallback done) {
  const RingId key = object_key(object);
  overlay_.route(reader, key, "dolr.read", sizeof(ObjectId),
                 [this, object, reader, done = std::move(done)](
                     const Overlay::RouteResult& r) {
                   ReadResult result;
                   result.owner = r.owner;
                   result.hops = r.hops;
                   result.holders = overlay_.state_of(r.owner).refs_of(object);
                   // Direct reply to the reader (one message).
                   overlay_.transport().send(
                       overlay_.state_of(r.owner).endpoint(), reader, "dolr.reply",
                       result.holders.size() * sizeof(sim::EndpointId),
                       [done, result] { if (done) done(result); });
                 });
}

std::uint64_t Dolr::repair_replicas() {
  std::uint64_t copied = 0;
  for (RingId id : overlay_.live_ids()) {
    // Only the current owner of a key re-pushes it, so repeated repair
    // passes converge instead of spreading stale copies.
    OverlayNode& n = overlay_.state_of(id);
    for (const auto& ref : n.all_refs()) {
      if (overlay_.owner_of(ref.key) != id) continue;
      replicate(id, ref);
      ++copied;
    }
  }
  return copied;
}

template <typename Fn>
void Dolr::for_each_missing_copy(Fn&& fn) const {
  for (RingId id : overlay_.live_ids()) {
    const OverlayNode& n = overlay_.state_of(id);
    for (const auto& ref : n.all_refs()) {
      if (overlay_.owner_of(ref.key) != id) continue;
      for (RingId s :
           overlay_.replica_targets(id, cfg_.replication_factor - 1)) {
        if (!overlay_.state_of(s).has_ref(ref.object, ref.holder))
          fn(id, overlay_.endpoint_of(s), ref);
      }
    }
  }
}

std::uint64_t Dolr::repair_replicas(std::size_t max_copies) {
  std::uint64_t copied = 0;
  for_each_missing_copy([&](RingId owner, sim::EndpointId target,
                            const StoredRef& ref) {
    if (copied >= max_copies) return;
    replicate_to(owner, target, ref);
    ++copied;
  });
  return copied;
}

std::size_t Dolr::replication_backlog() const {
  std::size_t missing = 0;
  for_each_missing_copy(
      [&](RingId, sim::EndpointId, const StoredRef&) { ++missing; });
  return missing;
}

}  // namespace hkws::dht
