// A Pastry-style prefix-routing overlay implementing the generalized DHT
// interface (paper §2.1). Identifiers are strings of base-2^b digits; each
// hop fixes at least one more leading digit of the key, giving
// O(log_{2^b} n) routing. The owner of a key is the live node numerically
// closest to it — a different surrogate rule than Chord's successor, which
// is exactly the point: the keyword-search layer above cannot tell the
// difference.
//
// Simulation note: like ChordNetwork, route()/lookup_now() use node-local
// state only (leaf sets + routing tables); membership maintenance
// (join/leave/fail repair) recomputes affected state from global knowledge
// while charging the messages the Pastry protocols would cost, since the
// experiments measure routing and search, not maintenance fidelity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dht/overlay.hpp"
#include "dht/pastry_node.hpp"

namespace hkws::dht {

class PastryNetwork final : public Overlay {
 public:
  struct Config {
    int id_bits = 32;         ///< must be a multiple of digit_bits
    int digit_bits = 4;       ///< b; 2^b routing-table columns
    int leaf_size = 8;        ///< total leaf-set size (half per side)
    std::uint64_t seed = 42;  ///< node-id hashing salt
    int max_route_hops = 256;
  };

  PastryNetwork(net::Transport& net, Config cfg);

  /// Builds a steady-state overlay of `n` peers (endpoints 1..n).
  static PastryNetwork build(net::Transport& net, std::size_t n, Config cfg);

  // --- Membership ----------------------------------------------------------

  /// First node of a fresh overlay.
  RingId create(sim::EndpointId endpoint);

  /// Joins via `bootstrap`: routes to the key's owner, adopts leaf set and
  /// routing table, takes over the keys now numerically closest to it.
  RingId join(sim::EndpointId endpoint, sim::EndpointId bootstrap);

  /// Graceful departure with reference handoff.
  void leave(sim::EndpointId endpoint);

  /// Abrupt failure.
  void fail(sim::EndpointId endpoint);

  /// Repairs leaf sets and prunes/refills dead routing-table entries at
  /// every live node. Returns messages charged.
  std::uint64_t repair_all();

  // --- Overlay interface ------------------------------------------------------

  std::size_t size() const override { return by_id_.size(); }
  const RingSpace& space() const override { return space_; }
  bool is_live(sim::EndpointId endpoint) const override;
  std::optional<RingId> ring_id_of(sim::EndpointId endpoint) const override;
  sim::EndpointId endpoint_of(RingId id) const override;
  std::vector<RingId> live_ids() const override;
  OverlayNode& state_of(RingId id) override { return node(id); }
  const OverlayNode& state_of(RingId id) const override { return node(id); }
  RingId owner_of(RingId key) const override;
  void route(sim::EndpointId from, RingId key, std::string kind,
             std::size_t payload_bytes, RouteCallback on_owner) override;
  RouteResult lookup_now(RingId start, RingId key,
                         const std::string& kind) override;
  std::vector<RingId> replica_targets(RingId owner, int count) const override;
  net::Transport& transport() override { return net_; }

  // --- Pastry specifics (tests, diagnostics) ---------------------------------

  PastryNode& node(RingId id);
  const PastryNode& node(RingId id) const;
  int digit_count() const noexcept { return digits_; }

  /// Digit `position` of `id` (0 = most significant).
  int digit_at(RingId id, int position) const;

  /// Number of leading digits `a` and `b` share.
  int shared_prefix_digits(RingId a, RingId b) const;

  /// Circular distance between two ids (min of both directions).
  std::uint64_t circular_distance(RingId a, RingId b) const;

 private:
  RingId unique_ring_id(sim::EndpointId endpoint);
  /// Next hop toward `key` from `at` using only local state; nullopt if
  /// `at` believes it is the owner.
  std::optional<RingId> next_hop(const PastryNode& at, RingId key) const;
  /// Recomputes `n`'s leaf sets and routing table from global knowledge.
  void rebuild_state(PastryNode& n);
  void route_step(std::shared_ptr<struct PastryRouteState> state, RingId at);

  net::Transport& net_;
  Config cfg_;
  RingSpace space_;
  int digits_;
  std::map<RingId, std::unique_ptr<PastryNode>> by_id_;
  std::map<sim::EndpointId, RingId> by_endpoint_;
  std::set<RingId> dead_;
};

}  // namespace hkws::dht
