#include "dht/chord_network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/hash.hpp"

namespace hkws::dht {

namespace {
// Messages charged per maintenance interaction (request + reply).
constexpr std::uint64_t kRpcCost = 2;
}  // namespace

// In-flight state of one routed message.
struct RouteState {
  RingId key = 0;
  std::string kind;
  std::size_t bytes = 0;
  ChordNetwork::RouteCallback on_owner;
  int hops = 0;
};

ChordNetwork::ChordNetwork(net::Transport& net, Config cfg)
    : net_(net), cfg_(cfg), space_(cfg.id_bits) {
  if (cfg.id_bits < 1 || cfg.id_bits > 64)
    throw std::invalid_argument("ChordNetwork: id_bits must be in [1,64]");
  if (cfg.successor_list_size < 1)
    throw std::invalid_argument("ChordNetwork: successor_list_size >= 1");
}

RingId ChordNetwork::unique_ring_id(sim::EndpointId endpoint) {
  // Hash the endpoint onto the ring; on collision (likely only for small
  // id_bits), salt and retry so every peer gets a distinct id.
  for (std::uint64_t salt = 0;; ++salt) {
    const RingId id = space_.clamp(
        mix64(mix64(endpoint ^ seeds::kNodeId ^ cfg_.seed) + salt));
    if (!by_id_.contains(id) && !dead_.contains(id)) return id;
  }
}

RingId ChordNetwork::create_ring(sim::EndpointId endpoint) {
  if (!by_endpoint_.empty())
    throw std::logic_error("create_ring: ring already exists");
  const RingId id = unique_ring_id(endpoint);
  auto n = std::make_unique<ChordNode>(id, endpoint, cfg_.id_bits);
  n->set_successor_list({id});
  n->set_predecessor(id);
  for (int i = 0; i < cfg_.id_bits; ++i) n->set_finger(i, id);
  by_id_[id] = std::move(n);
  by_endpoint_[endpoint] = id;
  net_.register_endpoint(endpoint);
  return id;
}

RingId ChordNetwork::join(sim::EndpointId endpoint, sim::EndpointId bootstrap) {
  const auto boot_id = ring_id_of(bootstrap);
  if (!boot_id) throw std::invalid_argument("join: bootstrap not live");
  const RingId id = unique_ring_id(endpoint);

  // Find our successor through the overlay, starting at the bootstrap node.
  const RouteResult r = lookup_now(*boot_id, id, "dht.join");
  ChordNode& succ = node(r.owner);

  auto joiner = std::make_unique<ChordNode>(id, endpoint, cfg_.id_bits);
  // Successor list: successor first, then its list, truncated.
  std::vector<RingId> slist{succ.id()};
  for (RingId s : succ.successor_list()) {
    if (s != id && static_cast<int>(slist.size()) < cfg_.successor_list_size)
      slist.push_back(s);
  }
  joiner->set_successor_list(std::move(slist));
  joiner->set_predecessor(succ.predecessor());
  net_.metrics().count("dht.maintenance.msgs", kRpcCost);  // link exchange

  // Take over keys in (predecessor, id] from the successor.
  auto moved = succ.extract_refs_if([&](RingId key) {
    return space_.in_interval_oc(key, id, succ.id());
  });
  for (const auto& ref : moved) joiner->add_ref(ref);
  if (!moved.empty())
    net_.metrics().count("dht.maintenance.msgs", moved.size());

  // Splice: predecessor's successor and successor's predecessor now point
  // at the joiner (Chord would converge to this via notify; doing it
  // eagerly keeps the ring immediately routable).
  if (auto pred = succ.predecessor(); pred && *pred != id) {
    if (auto it = by_id_.find(*pred); it != by_id_.end()) {
      auto list = it->second->successor_list();
      list.insert(list.begin(), id);
      if (static_cast<int>(list.size()) > cfg_.successor_list_size)
        list.resize(static_cast<std::size_t>(cfg_.successor_list_size));
      it->second->set_successor_list(std::move(list));
      net_.metrics().count("dht.maintenance.msgs", 1);
    }
  }
  succ.set_predecessor(id);

  ChordNode& placed = *joiner;
  by_id_[id] = std::move(joiner);
  by_endpoint_[endpoint] = id;
  net_.register_endpoint(endpoint);
  fix_all_fingers(placed, /*charge=*/true);
  return id;
}

void ChordNetwork::leave(sim::EndpointId endpoint) {
  const auto idOpt = ring_id_of(endpoint);
  if (!idOpt) throw std::invalid_argument("leave: endpoint not live");
  const RingId id = *idOpt;
  ChordNode& n = node(id);

  if (by_id_.size() > 1) {
    // Hand all references to the successor.
    const RingId succ_id = owner_of(space_.clamp(id + 1));
    ChordNode& succ = node(succ_id);
    auto moved = n.extract_refs_if([](RingId) { return false; });
    for (const auto& ref : moved) succ.add_ref(ref);
    if (!moved.empty())
      net_.metrics().count("dht.maintenance.msgs", moved.size());

    // Splice the ring.
    if (auto pred = n.predecessor(); pred && *pred != id) {
      if (auto it = by_id_.find(*pred); it != by_id_.end()) {
        auto list = it->second->successor_list();
        std::erase(list, id);
        if (list.empty() || list.front() != succ_id)
          list.insert(list.begin(), succ_id);
        it->second->set_successor_list(std::move(list));
      }
      succ.set_predecessor(*pred);
      net_.metrics().count("dht.maintenance.msgs", kRpcCost);
    }
  }
  by_id_.erase(id);
  by_endpoint_.erase(endpoint);
  net_.unregister_endpoint(endpoint);
}

void ChordNetwork::fail(sim::EndpointId endpoint) {
  const auto idOpt = ring_id_of(endpoint);
  if (!idOpt) throw std::invalid_argument("fail: endpoint not live");
  dead_.insert(*idOpt);
  by_id_.erase(*idOpt);
  by_endpoint_.erase(endpoint);
  net_.unregister_endpoint(endpoint);
  net_.metrics().count("dht.failures");
}

std::uint64_t ChordNetwork::stabilize_all() {
  std::uint64_t charged = 0;
  const auto ids = live_ids();
  const int finger_to_fix =
      static_cast<int>(net_.metrics().counter("dht.stabilize_rounds") %
                       static_cast<std::uint64_t>(cfg_.id_bits));
  for (RingId id : ids) {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) continue;
    ChordNode& n = *it->second;

    // 1. Drop dead successors; if the list empties, recover by probing the
    //    ring clockwise (models successive timeouts + rejoin-by-scan).
    auto list = n.successor_list();
    std::erase_if(list, [&](RingId s) { return !by_id_.contains(s); });
    if (list.empty()) {
      if (by_id_.size() == 1) {
        list = {id};
      } else {
        list = {owner_of(space_.clamp(id + 1))};
        charged += static_cast<std::uint64_t>(cfg_.successor_list_size);
      }
    }
    n.set_successor_list(std::move(list));

    // 2. Ask successor for its predecessor; adopt if it sits between us.
    const RingId succ_id = *n.successor();
    ChordNode& succ = node(succ_id == id ? id : succ_id);
    charged += kRpcCost;
    if (auto p = succ.predecessor();
        p && by_id_.contains(*p) && *p != id &&
        space_.in_interval_oo(*p, id, succ.id())) {
      auto nl = n.successor_list();
      nl.insert(nl.begin(), *p);
      n.set_successor_list(std::move(nl));
    }

    // 3. Notify our (possibly new) successor.
    ChordNode& cur_succ = node(*n.successor());
    if (auto cp = cur_succ.predecessor();
        !cp || !by_id_.contains(*cp) ||
        space_.in_interval_oo(id, *cp, cur_succ.id())) {
      cur_succ.set_predecessor(id);
    }
    charged += 1;

    // 4. Refresh successor list from successor's list.
    {
      auto nl = n.successor_list();
      nl.resize(1);
      for (RingId s : node(nl.front()).successor_list()) {
        if (s != id &&
            static_cast<int>(nl.size()) < cfg_.successor_list_size &&
            by_id_.contains(s))
          nl.push_back(s);
      }
      n.set_successor_list(std::move(nl));
    }

    // 5. Fix one finger per round (classic Chord pacing).
    const RingId target = space_.add_pow2(id, finger_to_fix);
    const RouteResult rr = lookup_now(id, target, "dht.fix_finger");
    n.set_finger(finger_to_fix, rr.owner);
    charged += static_cast<std::uint64_t>(rr.hops);

    // Prune fingers through dead nodes.
    for (int i = 0; i < cfg_.id_bits; ++i) {
      const auto& f = n.fingers()[static_cast<std::size_t>(i)];
      if (f && !by_id_.contains(*f)) n.set_finger(i, std::nullopt);
    }
  }
  net_.metrics().count("dht.stabilize_rounds");
  net_.metrics().count("dht.maintenance.msgs", charged);
  return charged;
}

ChordNetwork ChordNetwork::build(net::Transport& net, std::size_t n, Config cfg) {
  ChordNetwork dht(net, cfg);
  if (n == 0) return dht;
  // Instantiate all nodes, then compute exact steady-state links globally.
  for (std::size_t i = 0; i < n; ++i) {
    const auto endpoint = static_cast<sim::EndpointId>(i + 1);
    const RingId id = dht.unique_ring_id(endpoint);
    dht.by_id_[id] =
        std::make_unique<ChordNode>(id, endpoint, cfg.id_bits);
    dht.by_endpoint_[endpoint] = id;
    net.register_endpoint(endpoint);
  }
  for (auto& [id, nodeptr] : dht.by_id_) {
    ChordNode& nd = *nodeptr;
    // Successor list: next k nodes clockwise.
    std::vector<RingId> slist;
    auto it = dht.by_id_.upper_bound(id);
    const std::size_t want = std::min<std::size_t>(
        static_cast<std::size_t>(cfg.successor_list_size),
        dht.by_id_.size() - 1);
    while (slist.size() < want) {
      if (it == dht.by_id_.end()) it = dht.by_id_.begin();
      if (it->first == id) break;
      slist.push_back(it->first);
      ++it;
    }
    if (slist.empty()) slist = {id};
    nd.set_successor_list(std::move(slist));
    // Predecessor: previous node counterclockwise.
    auto pit = dht.by_id_.find(id);
    if (pit == dht.by_id_.begin()) pit = dht.by_id_.end();
    --pit;
    nd.set_predecessor(pit->first == id ? std::optional<RingId>{id}
                                        : std::optional<RingId>{pit->first});
    dht.fix_all_fingers(nd, /*charge=*/false);
  }
  return dht;
}

bool ChordNetwork::is_live(sim::EndpointId endpoint) const {
  return by_endpoint_.contains(endpoint);
}

std::optional<RingId> ChordNetwork::ring_id_of(sim::EndpointId endpoint) const {
  const auto it = by_endpoint_.find(endpoint);
  if (it == by_endpoint_.end()) return std::nullopt;
  return it->second;
}

sim::EndpointId ChordNetwork::endpoint_of(RingId id) const {
  return node(id).endpoint();
}

ChordNode& ChordNetwork::node(RingId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) throw std::out_of_range("ChordNetwork::node");
  return *it->second;
}

const ChordNode& ChordNetwork::node(RingId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) throw std::out_of_range("ChordNetwork::node");
  return *it->second;
}

ChordNode& ChordNetwork::node_at(sim::EndpointId endpoint) {
  const auto id = ring_id_of(endpoint);
  if (!id) throw std::out_of_range("ChordNetwork::node_at");
  return node(*id);
}

std::vector<RingId> ChordNetwork::live_ids() const {
  std::vector<RingId> ids;
  ids.reserve(by_id_.size());
  for (const auto& [id, _] : by_id_) ids.push_back(id);
  return ids;
}

RingId ChordNetwork::owner_of(RingId key) const {
  if (by_id_.empty()) throw std::logic_error("owner_of: empty ring");
  key = space_.clamp(key);
  auto it = by_id_.lower_bound(key);  // first id >= key (successor)
  if (it == by_id_.end()) it = by_id_.begin();
  return it->first;
}

std::vector<RingId> ChordNetwork::replica_targets(RingId owner,
                                                  int count) const {
  std::vector<RingId> targets;
  for (RingId s : node(owner).successor_list()) {
    if (static_cast<int>(targets.size()) >= count) break;
    if (s == owner || !by_id_.contains(s)) continue;
    targets.push_back(s);
  }
  return targets;
}

std::optional<ChordNetwork::Hop> ChordNetwork::next_hop(const ChordNode& at,
                                                        RingId key) const {
  // First live entry of the successor list (dead entries model timeouts).
  std::optional<RingId> succ;
  for (RingId s : at.successor_list()) {
    if (by_id_.contains(s)) {
      succ = s;
      break;
    }
  }
  if (!succ || *succ == at.id()) return std::nullopt;  // alone: we own it
  // Ownership shortcut, valid only while the predecessor link is live.
  if (auto pred = at.predecessor();
      pred && *pred != at.id() && by_id_.contains(*pred) &&
      space_.in_interval_oc(key, *pred, at.id()))
    return std::nullopt;
  // The predecessor decides: key in (us, successor] => successor owns it.
  if (space_.in_interval_oc(key, at.id(), *succ))
    return Hop{*succ, /*final=*/true};
  if (auto cp = at.closest_preceding(
          key, space_, [this](RingId x) { return by_id_.contains(x); }))
    return Hop{*cp, /*final=*/false};
  return Hop{*succ, /*final=*/false};  // fallback: walk the ring
}

void ChordNetwork::route_step(std::shared_ptr<RouteState> state, RingId at,
                              bool arrived_final) {
  const auto it = by_id_.find(at);
  if (it == by_id_.end()) {
    // Node died while the message was in flight.
    net_.metrics().count("dht.route_lost");
    return;
  }
  ChordNode& n = *it->second;
  const std::optional<Hop> hop =
      arrived_final ? std::optional<Hop>{} : next_hop(n, state->key);
  if (!hop || state->hops >= cfg_.max_route_hops) {
    if (state->hops >= cfg_.max_route_hops)
      net_.metrics().count("dht.route_overflow");
    state->on_owner(RouteResult{at, state->hops});
    return;
  }
  const RingId next = hop->next;
  const bool is_final = hop->final;
  ++state->hops;
  net_.send(n.endpoint(), endpoint_of(next), state->kind, state->bytes,
            [this, state, next, is_final] {
              route_step(std::move(state), next, is_final);
            });
}

void ChordNetwork::route(sim::EndpointId from, RingId key, std::string kind,
                         std::size_t payload_bytes, RouteCallback on_owner) {
  const auto start = ring_id_of(from);
  if (!start) {
    net_.metrics().count("dht.route_lost");
    return;
  }
  auto state = std::make_shared<RouteState>();
  state->key = space_.clamp(key);
  state->kind = std::move(kind);
  state->bytes = payload_bytes;
  state->on_owner = std::move(on_owner);
  // Kick off asynchronously so callers observe uniform async semantics.
  net_.schedule_in(0, [this, state, at = *start]() mutable {
    route_step(std::move(state), at, /*arrived_final=*/false);
  });
}

ChordNetwork::RouteResult ChordNetwork::lookup_now(RingId start, RingId key,
                                                   const std::string& kind) {
  key = space_.clamp(key);
  RingId at = start;
  int hops = 0;
  while (true) {
    const ChordNode& n = node(at);
    const auto hop = next_hop(n, key);
    if (!hop || hops >= cfg_.max_route_hops) {
      if (hops >= cfg_.max_route_hops)
        net_.metrics().count("dht.route_overflow");
      return RouteResult{at, hops};
    }
    at = hop->next;
    ++hops;
    net_.metrics().count("net.messages");
    net_.metrics().count("msg." + kind);
    if (hop->final) return RouteResult{at, hops};
  }
}

void ChordNetwork::fix_all_fingers(ChordNode& n, bool charge) {
  for (int i = 0; i < cfg_.id_bits; ++i) {
    const RingId target = space_.add_pow2(n.id(), i);
    if (charge) {
      const RouteResult r = lookup_now(n.id(), target, "dht.fix_finger");
      n.set_finger(i, r.owner);
    } else {
      n.set_finger(i, owner_of(target));
    }
  }
}

}  // namespace hkws::dht
