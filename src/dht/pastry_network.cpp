#include "dht/pastry_network.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/hash.hpp"

namespace hkws::dht {

namespace {
constexpr std::uint64_t kRpcCost = 2;  // request + reply
}

// In-flight state of one routed message.
struct PastryRouteState {
  RingId key = 0;
  std::string kind;
  std::size_t bytes = 0;
  Overlay::RouteCallback on_owner;
  int hops = 0;
};

PastryNetwork::PastryNetwork(net::Transport& net, Config cfg)
    : net_(net), cfg_(cfg), space_(cfg.id_bits) {
  if (cfg.id_bits < 1 || cfg.id_bits > 64)
    throw std::invalid_argument("PastryNetwork: id_bits must be in [1,64]");
  if (cfg.digit_bits < 1 || cfg.digit_bits > 8 ||
      cfg.id_bits % cfg.digit_bits != 0)
    throw std::invalid_argument(
        "PastryNetwork: id_bits must be a multiple of digit_bits (<= 8)");
  if (cfg.leaf_size < 2 || cfg.leaf_size % 2 != 0)
    throw std::invalid_argument("PastryNetwork: leaf_size must be even, >= 2");
  digits_ = cfg.id_bits / cfg.digit_bits;
}

int PastryNetwork::digit_at(RingId id, int position) const {
  const int shift = (digits_ - 1 - position) * cfg_.digit_bits;
  return static_cast<int>((id >> shift) & low_mask(cfg_.digit_bits));
}

int PastryNetwork::shared_prefix_digits(RingId a, RingId b) const {
  const std::uint64_t diff = space_.clamp(a ^ b);
  if (diff == 0) return digits_;
  const int leading_zero_bits = cfg_.id_bits - (highest_set_bit(diff) + 1);
  return leading_zero_bits / cfg_.digit_bits;
}

std::uint64_t PastryNetwork::circular_distance(RingId a, RingId b) const {
  return std::min(space_.distance(a, b), space_.distance(b, a));
}

RingId PastryNetwork::unique_ring_id(sim::EndpointId endpoint) {
  for (std::uint64_t salt = 0;; ++salt) {
    const RingId id = space_.clamp(
        mix64(mix64(endpoint ^ seeds::kNodeId ^ cfg_.seed ^ 0x9a57ULL) + salt));
    if (!by_id_.contains(id) && !dead_.contains(id)) return id;
  }
}

RingId PastryNetwork::owner_of(RingId key) const {
  if (by_id_.empty()) throw std::logic_error("owner_of: empty overlay");
  key = space_.clamp(key);
  // Numerically closest node; ties go to the clockwise side.
  auto cw = by_id_.lower_bound(key);
  if (cw == by_id_.end()) cw = by_id_.begin();
  auto ccw = by_id_.lower_bound(key);
  if (ccw == by_id_.begin()) ccw = by_id_.end();
  --ccw;
  const std::uint64_t dcw = space_.distance(key, cw->first);
  const std::uint64_t dccw = space_.distance(ccw->first, key);
  return dcw <= dccw ? cw->first : ccw->first;
}

void PastryNetwork::rebuild_state(PastryNode& n) {
  // Leaf sets: the leaf_size/2 nearest live nodes on each side.
  const int half = cfg_.leaf_size / 2;
  std::vector<RingId> cw, ccw;
  if (by_id_.size() > 1) {
    auto it = by_id_.upper_bound(n.id());
    while (static_cast<int>(cw.size()) < half) {
      if (it == by_id_.end()) it = by_id_.begin();
      if (it->first == n.id()) break;
      if (std::find(cw.begin(), cw.end(), it->first) != cw.end()) break;
      cw.push_back(it->first);
      ++it;
    }
    auto rit = by_id_.find(n.id());
    while (static_cast<int>(ccw.size()) < half) {
      if (rit == by_id_.begin()) rit = by_id_.end();
      --rit;
      if (rit->first == n.id()) break;
      if (std::find(ccw.begin(), ccw.end(), rit->first) != ccw.end()) break;
      ccw.push_back(rit->first);
    }
  }
  n.set_leaf_sets(std::move(cw), std::move(ccw));

  // Routing table: for row l / column d, any live node whose id shares our
  // first l digits and has digit d at position l. Such ids form one
  // contiguous identifier interval, so a map range scan finds them.
  for (int row = 0; row < digits_; ++row) {
    const int below_bits = cfg_.id_bits - (row + 1) * cfg_.digit_bits;
    for (int col = 0; col < (1 << cfg_.digit_bits); ++col) {
      if (col == digit_at(n.id(), row)) {
        n.set_table_entry(row, col, std::nullopt);  // our own digit
        continue;
      }
      const RingId base =
          (n.id() & ~low_mask(cfg_.id_bits - row * cfg_.digit_bits)) |
          (static_cast<RingId>(col) << below_bits);
      const RingId last = base | low_mask(below_bits);
      auto it = by_id_.lower_bound(base);
      if (it != by_id_.end() && it->first <= last)
        n.set_table_entry(row, col, it->first);
      else
        n.set_table_entry(row, col, std::nullopt);
    }
  }
}

RingId PastryNetwork::create(sim::EndpointId endpoint) {
  if (!by_endpoint_.empty())
    throw std::logic_error("create: overlay already exists");
  const RingId id = unique_ring_id(endpoint);
  by_id_[id] = std::make_unique<PastryNode>(id, endpoint, digits_,
                                            1 << cfg_.digit_bits);
  by_endpoint_[endpoint] = id;
  net_.register_endpoint(endpoint);
  rebuild_state(*by_id_[id]);
  return id;
}

RingId PastryNetwork::join(sim::EndpointId endpoint,
                           sim::EndpointId bootstrap) {
  const auto boot_id = ring_id_of(bootstrap);
  if (!boot_id) throw std::invalid_argument("join: bootstrap not live");
  const RingId id = unique_ring_id(endpoint);

  // Route a JOIN toward our own id; nodes along the path would contribute
  // their routing-table rows (charged below).
  const RouteResult r = lookup_now(*boot_id, id, "dht.join");
  PastryNode& prev_owner = node(r.owner);

  auto joiner = std::make_unique<PastryNode>(id, endpoint, digits_,
                                             1 << cfg_.digit_bits);
  PastryNode& placed = *joiner;
  by_id_[id] = std::move(joiner);
  by_endpoint_[endpoint] = id;
  net_.register_endpoint(endpoint);
  rebuild_state(placed);
  // State transfer: one row per path node plus the owner's leaf set.
  net_.metrics().count("dht.maintenance.msgs",
                       static_cast<std::uint64_t>(r.hops) + kRpcCost);

  // Take over references now numerically closest to us. They sit at the
  // previous owner and possibly its immediate neighbors.
  std::vector<PastryNode*> donors{&prev_owner};
  for (RingId nb : placed.leaf_cw())
    donors.push_back(&node(nb));
  for (RingId nb : placed.leaf_ccw())
    donors.push_back(&node(nb));
  std::uint64_t moved = 0;
  for (PastryNode* donor : donors) {
    if (donor->id() == id) continue;
    for (const auto& ref : donor->extract_refs_if(
             [&](RingId key) { return owner_of(key) != id; })) {
      placed.add_ref(ref);
      ++moved;
    }
  }
  if (moved != 0) net_.metrics().count("dht.maintenance.msgs", moved);

  // Announce ourselves to the leaf-set neighborhood.
  for (RingId nb : placed.known_nodes()) {
    rebuild_state(node(nb));
    net_.metrics().count("dht.maintenance.msgs", 1);
  }
  return id;
}

void PastryNetwork::leave(sim::EndpointId endpoint) {
  const auto idOpt = ring_id_of(endpoint);
  if (!idOpt) throw std::invalid_argument("leave: endpoint not live");
  const RingId id = *idOpt;
  PastryNode& n = node(id);
  auto refs = n.extract_refs_if([](RingId) { return false; });
  const auto neighbors = n.known_nodes();
  by_id_.erase(id);
  by_endpoint_.erase(endpoint);
  net_.unregister_endpoint(endpoint);
  if (!by_id_.empty()) {
    for (const auto& ref : refs) node(owner_of(ref.key)).add_ref(ref);
    net_.metrics().count("dht.maintenance.msgs", refs.size());
    for (RingId nb : neighbors) {
      if (!by_id_.contains(nb)) continue;
      rebuild_state(node(nb));
      net_.metrics().count("dht.maintenance.msgs", 1);
    }
  }
}

void PastryNetwork::fail(sim::EndpointId endpoint) {
  const auto idOpt = ring_id_of(endpoint);
  if (!idOpt) throw std::invalid_argument("fail: endpoint not live");
  dead_.insert(*idOpt);
  by_id_.erase(*idOpt);
  by_endpoint_.erase(endpoint);
  net_.unregister_endpoint(endpoint);
  net_.metrics().count("dht.failures");
}

std::uint64_t PastryNetwork::repair_all() {
  std::uint64_t charged = 0;
  for (const auto& [id, nodeptr] : by_id_) {
    rebuild_state(*nodeptr);
    charged += kRpcCost + static_cast<std::uint64_t>(cfg_.leaf_size);
  }
  net_.metrics().count("dht.maintenance.msgs", charged);
  return charged;
}

PastryNetwork PastryNetwork::build(net::Transport& net, std::size_t n,
                                   Config cfg) {
  PastryNetwork overlay(net, cfg);
  for (std::size_t i = 0; i < n; ++i) {
    const auto endpoint = static_cast<sim::EndpointId>(i + 1);
    const RingId id = overlay.unique_ring_id(endpoint);
    overlay.by_id_[id] = std::make_unique<PastryNode>(
        id, endpoint, overlay.digits_, 1 << cfg.digit_bits);
    overlay.by_endpoint_[endpoint] = id;
    net.register_endpoint(endpoint);
  }
  for (auto& [id, nodeptr] : overlay.by_id_)
    overlay.rebuild_state(*nodeptr);
  return overlay;
}

bool PastryNetwork::is_live(sim::EndpointId endpoint) const {
  return by_endpoint_.contains(endpoint);
}

std::optional<RingId> PastryNetwork::ring_id_of(
    sim::EndpointId endpoint) const {
  const auto it = by_endpoint_.find(endpoint);
  if (it == by_endpoint_.end()) return std::nullopt;
  return it->second;
}

sim::EndpointId PastryNetwork::endpoint_of(RingId id) const {
  return node(id).endpoint();
}

std::vector<RingId> PastryNetwork::live_ids() const {
  std::vector<RingId> ids;
  ids.reserve(by_id_.size());
  for (const auto& [id, _] : by_id_) ids.push_back(id);
  return ids;
}

PastryNode& PastryNetwork::node(RingId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) throw std::out_of_range("PastryNetwork::node");
  return *it->second;
}

const PastryNode& PastryNetwork::node(RingId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) throw std::out_of_range("PastryNetwork::node");
  return *it->second;
}

std::vector<RingId> PastryNetwork::replica_targets(RingId owner,
                                                   int count) const {
  // Alternate the two leaf-set sides, nearest first.
  const PastryNode& n = node(owner);
  std::vector<RingId> targets;
  std::size_t i = 0;
  while (static_cast<int>(targets.size()) < count) {
    bool any = false;
    if (i < n.leaf_cw().size() && by_id_.contains(n.leaf_cw()[i])) {
      targets.push_back(n.leaf_cw()[i]);
      any = true;
    }
    if (static_cast<int>(targets.size()) < count &&
        i < n.leaf_ccw().size() && by_id_.contains(n.leaf_ccw()[i])) {
      targets.push_back(n.leaf_ccw()[i]);
      any = true;
    }
    if (!any) break;
    ++i;
  }
  return targets;
}

std::optional<RingId> PastryNetwork::next_hop(const PastryNode& at,
                                              RingId key) const {
  auto alive = [&](RingId x) { return by_id_.contains(x); };

  // 1. Leaf-set case: if the key falls within the span of our leaf sets,
  //    deliver to the numerically closest of {self} ∪ leaf sets. When the
  //    two leaf sets overlap (small networks), they cover the whole ring.
  const RingId cw_edge =
      at.leaf_cw().empty() ? at.id() : at.leaf_cw().back();
  const RingId ccw_edge =
      at.leaf_ccw().empty() ? at.id() : at.leaf_ccw().back();
  const std::size_t half = static_cast<std::size_t>(cfg_.leaf_size) / 2;
  bool covers_ring = by_id_.size() == 1 || at.leaf_cw().size() < half ||
                     at.leaf_ccw().size() < half;
  if (!covers_ring) {
    for (RingId x : at.leaf_cw()) {
      if (std::find(at.leaf_ccw().begin(), at.leaf_ccw().end(), x) !=
          at.leaf_ccw().end()) {
        covers_ring = true;
        break;
      }
    }
  }
  const bool in_leaf_span =
      covers_ring || space_.in_interval_oc(key, ccw_edge, cw_edge) ||
      key == ccw_edge;
  if (in_leaf_span) {
    RingId best = at.id();
    std::uint64_t best_d = circular_distance(at.id(), key);
    auto consider = [&](RingId x) {
      if (!alive(x)) return;
      const std::uint64_t d = circular_distance(x, key);
      if (d < best_d || (d == best_d && x < best)) {
        best = x;
        best_d = d;
      }
    };
    for (RingId x : at.leaf_cw()) consider(x);
    for (RingId x : at.leaf_ccw()) consider(x);
    if (best == at.id()) return std::nullopt;  // we own it
    return best;
  }

  // 2. Prefix routing: the table entry matching one more digit of the key.
  const int l = shared_prefix_digits(at.id(), key);
  if (l < digits_) {
    const auto entry = at.table_entry(l, digit_at(key, l));
    if (entry && alive(*entry)) return *entry;
  }

  // 3. Rare case: any known node at least as prefix-close and numerically
  //    strictly closer to the key than we are.
  std::optional<RingId> best;
  std::uint64_t best_d = circular_distance(at.id(), key);
  for (RingId x : at.known_nodes()) {
    if (!alive(x) || shared_prefix_digits(x, key) < l) continue;
    const std::uint64_t d = circular_distance(x, key);
    if (d < best_d) {
      best = x;
      best_d = d;
    }
  }
  return best;  // nullopt => deliver here (best-effort surrogate)
}

void PastryNetwork::route_step(std::shared_ptr<PastryRouteState> state,
                               RingId at) {
  const auto it = by_id_.find(at);
  if (it == by_id_.end()) {
    net_.metrics().count("dht.route_lost");
    return;
  }
  PastryNode& n = *it->second;
  const auto hop = next_hop(n, state->key);
  if (!hop || state->hops >= cfg_.max_route_hops) {
    if (state->hops >= cfg_.max_route_hops)
      net_.metrics().count("dht.route_overflow");
    state->on_owner(RouteResult{at, state->hops});
    return;
  }
  const RingId next = *hop;
  ++state->hops;
  net_.send(n.endpoint(), endpoint_of(next), state->kind, state->bytes,
            [this, state, next] { route_step(std::move(state), next); });
}

void PastryNetwork::route(sim::EndpointId from, RingId key, std::string kind,
                          std::size_t payload_bytes, RouteCallback on_owner) {
  const auto start = ring_id_of(from);
  if (!start) {
    net_.metrics().count("dht.route_lost");
    return;
  }
  auto state = std::make_shared<PastryRouteState>();
  state->key = space_.clamp(key);
  state->kind = std::move(kind);
  state->bytes = payload_bytes;
  state->on_owner = std::move(on_owner);
  net_.schedule_in(0, [this, state, at = *start]() mutable {
    route_step(std::move(state), at);
  });
}

Overlay::RouteResult PastryNetwork::lookup_now(RingId start, RingId key,
                                               const std::string& kind) {
  key = space_.clamp(key);
  RingId at = start;
  int hops = 0;
  while (true) {
    const PastryNode& n = node(at);
    const auto hop = next_hop(n, key);
    if (!hop || hops >= cfg_.max_route_hops) {
      if (hops >= cfg_.max_route_hops)
        net_.metrics().count("dht.route_overflow");
      return RouteResult{at, hops};
    }
    at = *hop;
    ++hops;
    net_.metrics().count("net.messages");
    net_.metrics().count("msg." + kind);
  }
}

}  // namespace hkws::dht
