#include "dht/chord_node.hpp"

#include <algorithm>

namespace hkws::dht {

ChordNode::ChordNode(RingId id, sim::EndpointId endpoint, int finger_count)
    : OverlayNode(id, endpoint) {
  fingers_.resize(static_cast<std::size_t>(finger_count));
}

std::optional<RingId> ChordNode::successor() const {
  if (successors_.empty()) return std::nullopt;
  return successors_.front();
}

void ChordNode::set_successor_list(std::vector<RingId> list) {
  successors_ = std::move(list);
}

void ChordNode::remove_successor(RingId dead) {
  std::erase(successors_, dead);
}

void ChordNode::set_finger(int i, std::optional<RingId> node) {
  fingers_.at(static_cast<std::size_t>(i)) = node;
}

std::optional<RingId> ChordNode::closest_preceding(
    RingId key, const RingSpace& space,
    const std::function<bool(RingId)>& alive) const {
  // Scan fingers and the successor list for the live link closest to (but
  // strictly before) the key. Local knowledge only.
  std::optional<RingId> best;
  auto consider = [&](RingId candidate) {
    if (candidate == id() || !alive(candidate)) return;
    if (!space.in_interval_oo(candidate, id(), key)) return;
    if (!best || space.in_interval_oo(*best, id(), candidate))
      best = candidate;
  };
  for (auto it = fingers_.rbegin(); it != fingers_.rend(); ++it)
    if (it->has_value()) consider(**it);
  for (RingId s : successors_) consider(s);
  return best;
}

}  // namespace hkws::dht
