// The object corpus: our synthetic stand-in for the paper's PCHome website
// directory (131,180 records, ~7.3 keywords each — §4, Table 1, Fig. 5).
// Records carry the same six fields as the paper's data so examples can
// print Table-1-style rows; only the keyword sets matter to the index.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/keyword.hpp"
#include "common/stats.hpp"

namespace hkws::workload {

/// One website record (paper Table 1).
struct ObjectRecord {
  ObjectId id = kInvalidObject;
  std::string title;
  std::string url;
  std::string category;     // digit string, as in the paper
  std::string description;
  KeywordSet keywords;      // the Keyword field, the part the index uses
};

class Corpus {
 public:
  Corpus() = default;
  explicit Corpus(std::vector<ObjectRecord> records);

  const std::vector<ObjectRecord>& records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  const ObjectRecord& operator[](std::size_t i) const { return records_[i]; }

  /// Histogram of keyword-set sizes (paper Fig. 5).
  Histogram keyword_size_histogram() const;

  /// Mean keywords per object (paper: 7.3).
  double mean_keywords() const;

  /// Occurrence count per keyword, most frequent first.
  std::vector<std::pair<Keyword, std::uint64_t>> keyword_frequencies() const;

  /// Distinct keywords used.
  std::size_t vocabulary_size() const;

 private:
  std::vector<ObjectRecord> records_;
};

}  // namespace hkws::workload
