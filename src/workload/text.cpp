#include "workload/text.hpp"

#include <cctype>

namespace hkws::workload {

std::unordered_set<std::string> TokenizerOptions::default_stop_words() {
  return {"a",   "an",  "and", "are", "as",  "at",   "be",  "by",  "for",
          "from", "in",  "is",  "it",  "of",  "on",   "or",  "the", "to",
          "was", "were", "with", "this", "that", "these", "those"};
}

namespace {
bool is_token_char(unsigned char c) {
  return std::isalnum(c) != 0 || c == '+' || c == '#' || c == '-';
}
}  // namespace

KeywordSet keywords_from_text(std::string_view text,
                              const TokenizerOptions& options) {
  std::vector<Keyword> words;
  std::unordered_set<std::string> seen;
  std::string token;
  auto flush = [&] {
    if (token.empty()) return;
    std::string t = std::move(token);
    token.clear();
    if (t.size() < options.min_length || t.size() > options.max_length)
      return;
    if (options.stop_words.contains(t)) return;
    if (words.size() >= options.max_keywords) return;
    if (seen.insert(t).second) words.push_back(std::move(t));
  };
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (is_token_char(c)) {
      token += options.lowercase
                   ? static_cast<char>(std::tolower(c))
                   : static_cast<char>(c);
    } else {
      flush();
    }
  }
  flush();
  return KeywordSet(std::move(words));
}

}  // namespace hkws::workload
