// Free-text to keyword-set adaptation, for the application layers the
// paper's Fig. 2 motivates (document retrieval, file sharing): tokenize,
// normalize, drop stop words and degenerate tokens, and cap the set size
// (the index scheme is designed for "a few to dozens of keywords" — §5).
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/keyword.hpp"

namespace hkws::workload {

struct TokenizerOptions {
  std::size_t min_length = 2;    ///< drop shorter tokens
  std::size_t max_length = 40;   ///< drop longer tokens (junk/URLs)
  std::size_t max_keywords = 32; ///< keep the first N distinct keywords
  bool lowercase = true;
  /// Tokens dropped outright. The default list covers common English
  /// function words; callers supply their own for other languages.
  std::unordered_set<std::string> stop_words = default_stop_words();

  static std::unordered_set<std::string> default_stop_words();
};

/// Extracts the keyword set of a text: split on anything that is not a
/// letter, digit, '+', '#' or '-' (so "c++", "c#" and "e-mail" survive),
/// normalize, filter, dedupe, cap.
KeywordSet keywords_from_text(std::string_view text,
                              const TokenizerOptions& options = {});

}  // namespace hkws::workload
