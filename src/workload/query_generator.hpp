// Query-log generator calibrated to the paper's two statistics:
//  * query sizes m in [1,5], skewed small (Fig. 8 uses m = 1..5),
//  * query popularity so Zipf-skewed that the top-10 distinct queries make
//    up ~60% of daily volume (§4 footnote 1 — the reason caching works).
//
// Every distinct query is a subset of some corpus object's keyword set, so
// queries always have at least one match (as real directory queries
// overwhelmingly do).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "workload/corpus.hpp"
#include "workload/query_log.hpp"

namespace hkws::workload {

struct QueryLogConfig {
  std::size_t query_count = 178000;   ///< one paper "day"
  std::size_t distinct_queries = 5000;
  double top10_share = 0.60;          ///< calibration target
  /// P(query size = 1..5); normalized internally.
  std::vector<double> size_weights = {0.40, 0.30, 0.17, 0.09, 0.04};
  /// Maximum document frequency (fraction of the corpus) a keyword may
  /// have to appear in queries. 1.0 = no filter. Real query terms are
  /// discriminative (the paper's IDF discussion, §1): directory users
  /// rarely query near-stop-words, so experiment harnesses cap this.
  double max_keyword_df = 1.0;
  std::uint64_t seed = 7;
};

class QueryLogGenerator {
 public:
  QueryLogGenerator(const Corpus& corpus, QueryLogConfig cfg);

  /// Generates one "day" of queries by Zipf-sampling the universe.
  QueryLog generate() const;

  /// The distinct-query universe, most popular rank first.
  const std::vector<KeywordSet>& universe() const noexcept { return universe_; }

  /// The most popular keyword sets of exactly `m` keywords — the paper's
  /// Fig. 8 query sample ("some popular keyword sets of size m").
  std::vector<KeywordSet> popular_sets(std::size_t m,
                                       std::size_t count) const;

  /// Solves the Zipf exponent s such that the top `topk` of `n` ranks
  /// carry `share` of the mass. Exposed for tests.
  static double solve_zipf_exponent(std::size_t n, std::size_t topk,
                                    double share);

  double zipf_exponent() const noexcept { return popularity_.skew(); }

 private:
  QueryLogConfig cfg_;
  std::vector<KeywordSet> universe_;
  ZipfDistribution popularity_;
};

}  // namespace hkws::workload
