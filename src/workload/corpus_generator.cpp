#include "workload/corpus_generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

namespace hkws::workload {

namespace {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

/// Expected value of round(LogNormal(mu, sigma)) clipped to [lo, hi].
double clipped_mean(double mu, double sigma, int lo, int hi) {
  double mean = 0, mass = 0;
  for (int k = lo; k <= hi; ++k) {
    const double a =
        k == lo ? 0.0
                : normal_cdf((std::log(k - 0.5) - mu) / sigma);
    const double b =
        k == hi ? 1.0
                : normal_cdf((std::log(k + 0.5) - mu) / sigma);
    const double p = b - a;
    mean += k * p;
    mass += p;
  }
  return mass > 0 ? mean / mass : 0;
}

}  // namespace

CorpusGenerator::CorpusGenerator(CorpusConfig cfg)
    : cfg_(cfg),
      keyword_ranks_(cfg.vocabulary_size, cfg.zipf_skew, cfg.zipf_shift),
      bundle_ranks_(std::max<std::size_t>(cfg.bundle_count, 1),
                    cfg.bundle_zipf_skew) {
  if (cfg.object_count == 0)
    throw std::invalid_argument("CorpusGenerator: object_count must be > 0");
  if (cfg.min_keywords < 1 || cfg.max_keywords < cfg.min_keywords)
    throw std::invalid_argument("CorpusGenerator: bad keyword-count range");
  if (static_cast<std::size_t>(cfg.max_keywords) > cfg.vocabulary_size)
    throw std::invalid_argument(
        "CorpusGenerator: max_keywords exceeds vocabulary");
  if (cfg.bundle_size < 1 ||
      static_cast<std::size_t>(cfg.bundle_size) > cfg.vocabulary_size)
    throw std::invalid_argument("CorpusGenerator: bad bundle_size");
  if (cfg.bundle_probability < 0 || cfg.bundle_probability > 1)
    throw std::invalid_argument("CorpusGenerator: bad bundle_probability");

  // Fixed topical bundles: distinct mid-popularity keyword ranks, chosen
  // deterministically from the seed.
  Rng bundle_rng(mix64(cfg.seed ^ 0xb0bab0baULL));
  bundles_.resize(cfg.bundle_count);
  for (auto& bundle : bundles_) {
    std::set<std::size_t> ranks;
    while (static_cast<int>(ranks.size()) < cfg.bundle_size)
      ranks.insert(keyword_ranks_.sample(bundle_rng));
    bundle.assign(ranks.begin(), ranks.end());
  }
  // Calibrate the log-normal location so the discretized, clipped mean hits
  // cfg.mean_keywords. clipped_mean is monotone in mu; binary search.
  double lo = -2.0, hi = 5.0;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (clipped_mean(mid, cfg.lognormal_sigma, cfg.min_keywords,
                     cfg.max_keywords) < cfg.mean_keywords)
      lo = mid;
    else
      hi = mid;
  }
  mu_ = 0.5 * (lo + hi);
}

int CorpusGenerator::sample_set_size(Rng& rng) const {
  // Box-Muller style normal from two uniforms, then exponentiate and round.
  const double u1 = rng.next_double();
  const double u2 = rng.next_double();
  const double z = std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
                   std::cos(2.0 * M_PI * u2);
  const double value = std::exp(mu_ + cfg_.lognormal_sigma * z);
  int size = static_cast<int>(std::lround(value));
  if (size < cfg_.min_keywords) size = cfg_.min_keywords;
  if (size > cfg_.max_keywords) size = cfg_.max_keywords;
  return size;
}

Corpus CorpusGenerator::generate() const {
  Rng rng(cfg_.seed);
  std::vector<ObjectRecord> records;
  records.reserve(cfg_.object_count);
  for (std::size_t i = 0; i < cfg_.object_count; ++i) {
    ObjectRecord rec;
    rec.id = static_cast<ObjectId>(i + 1);
    rec.title = "Site " + std::to_string(rec.id);
    rec.url = "http://site" + std::to_string(rec.id) + ".example.tw";
    rec.category.reserve(10);
    for (int d = 0; d < 10; ++d)
      rec.category += static_cast<char>('0' + rng.next_below(10));
    rec.description = "Synthetic directory record " + std::to_string(rec.id);

    const int size = sample_set_size(rng);
    std::set<std::size_t> ranks;
    // Topical bundle first (keyword correlation), if this record has one.
    if (!bundles_.empty() && rng.next_bool(cfg_.bundle_probability)) {
      const auto& bundle = bundles_[bundle_ranks_.sample(rng)];
      const auto take = std::min<std::size_t>(
          1 + rng.next_below(bundle.size()), static_cast<std::size_t>(size));
      std::set<std::size_t> positions;
      while (positions.size() < take)
        positions.insert(rng.next_below(bundle.size()));
      for (std::size_t p : positions) ranks.insert(bundle[p]);
    }
    // Rejection-sample distinct Zipf ranks; popular keywords recur often,
    // so cap the attempts and fill any shortfall uniformly.
    for (int attempts = 0;
         static_cast<int>(ranks.size()) < size && attempts < size * 64;
         ++attempts)
      ranks.insert(keyword_ranks_.sample(rng));
    while (static_cast<int>(ranks.size()) < size)
      ranks.insert(rng.next_below(cfg_.vocabulary_size));

    std::vector<Keyword> words;
    words.reserve(ranks.size());
    for (std::size_t rank : ranks) words.push_back("kw" + std::to_string(rank));
    rec.keywords = KeywordSet(std::move(words));
    records.push_back(std::move(rec));
  }
  return Corpus(std::move(records));
}

}  // namespace hkws::workload
