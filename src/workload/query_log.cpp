#include "workload/query_log.hpp"

#include <algorithm>
#include <unordered_map>

namespace hkws::workload {

QueryLog::QueryLog(std::vector<Query> queries) : queries_(std::move(queries)) {}

std::vector<std::pair<KeywordSet, std::uint64_t>> QueryLog::frequencies()
    const {
  std::unordered_map<KeywordSet, std::uint64_t, KeywordSetHash> counts;
  for (const auto& q : queries_) ++counts[q.keywords];
  std::vector<std::pair<KeywordSet, std::uint64_t>> out(counts.begin(),
                                                        counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

std::size_t QueryLog::distinct_count() const { return frequencies().size(); }

double QueryLog::top_share(std::size_t k) const {
  if (queries_.empty()) return 0.0;
  const auto freq = frequencies();
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < freq.size() && i < k; ++i) top += freq[i].second;
  return static_cast<double>(top) / static_cast<double>(queries_.size());
}

}  // namespace hkws::workload
