// Arrival processes for open-loop load generation. The serving engine
// replays a query log against the simulated cluster; *when* each query is
// submitted is decided here, independently of how fast the system drains
// them (that is what makes the load open-loop: a slow server does not slow
// the offered rate, it grows the backlog).
//
// Ticks are dimensionless; the engine interprets them as sim::Time (~1 ms).
// The module deliberately has no dependency on src/sim so it can also feed
// trace generators or offline analysis.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"

namespace hkws::workload {

using Ticks = std::uint64_t;

/// A stream of inter-arrival gaps. Deterministic given its seed.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Ticks between the previous arrival and the next one (may be 0:
  /// several queries can land on the same tick under high rates).
  virtual Ticks next_gap() = 0;
};

/// Poisson arrivals: exponentially distributed gaps with the given mean
/// rate. The standard model for independent user populations; produces
/// the bursts that expose queueing behaviour a fixed-gap driver hides.
class PoissonArrivals final : public ArrivalProcess {
 public:
  /// @param queries_per_kilotick  offered rate in queries per 1000 ticks
  ///                              (i.e. QPS when a tick is a millisecond).
  PoissonArrivals(double queries_per_kilotick, std::uint64_t seed);

  Ticks next_gap() override;

 private:
  double mean_gap_;  // ticks per arrival
  Rng rng_;
};

/// Fixed-gap arrivals (a perfectly paced closed schedule). Useful as a
/// variance-free baseline against Poisson runs at the same rate.
class FixedArrivals final : public ArrivalProcess {
 public:
  explicit FixedArrivals(Ticks gap) : gap_(gap) {}

  Ticks next_gap() override { return gap_; }

 private:
  Ticks gap_;
};

/// On/off bursty arrivals: Poisson at `burst_rate` for `burst_ticks`, then
/// silent for `idle_ticks`, repeating. Stresses admission control with a
/// duty cycle instead of a stationary rate.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double burst_queries_per_kilotick, Ticks burst_ticks,
                 Ticks idle_ticks, std::uint64_t seed);

  Ticks next_gap() override;

 private:
  PoissonArrivals burst_;
  Ticks burst_ticks_;
  Ticks idle_ticks_;
  Ticks into_burst_ = 0;  // ticks elapsed inside the current burst window
};

}  // namespace hkws::workload
