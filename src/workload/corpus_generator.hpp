// Synthetic PCHome-like corpus generator (the data substitution documented
// in DESIGN.md §3). Two distributions drive every experiment in the paper:
//
//  * keyword-set sizes — Fig. 5: unimodal, peak around 5-7, mean 7.3, tail
//    to ~30. We use a discretized log-normal clipped to [min,max] and
//    calibrated so the post-discretization mean is `mean_keywords`.
//  * keyword popularity — Zipf (§1 "keyword frequency ... typically
//    follows Zipf's law").
//
// Generation is fully deterministic per seed.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "workload/corpus.hpp"

namespace hkws::workload {

struct CorpusConfig {
  std::size_t object_count = 131180;  ///< paper's record count
  std::size_t vocabulary_size = 50000;
  /// Keyword popularity follows Zipf-Mandelbrot 1/(k+q)^s: the classic
  /// exponent s = 1 for the tail slope (paper §1: "keyword frequency ...
  /// typically follows Zipf's law") with a head shift q that calibrates the
  /// most frequent keyword to a few percent document frequency — curated
  /// directory keywords have many hot terms but no term covering half the
  /// corpus (a pure s = 1 head would put the top keyword in ~60% of
  /// records). The head stays hot enough to punish the inverted-index
  /// baseline (Fig. 6 "DII") while keyword *sets* still differ enough for
  /// the hypercube scheme to balance.
  double zipf_skew = 1.0;
  double zipf_shift = 20.0;
  double mean_keywords = 7.3;         ///< paper's mean keyword-set size
  double lognormal_sigma = 0.5;       ///< shape of the Fig.-5 curve
  int min_keywords = 1;
  int max_keywords = 30;
  /// Keyword correlation: real directory keywords co-occur in topical
  /// groups ("tv, news, taiwan"), which is what gives popular multi-keyword
  /// queries large result sets (Fig. 8, m >= 2). A record includes a
  /// random subset of one Zipf-popular bundle with probability
  /// `bundle_probability`; the rest of its keywords are independent.
  std::size_t bundle_count = 300;
  int bundle_size = 5;
  double bundle_probability = 0.35;
  double bundle_zipf_skew = 0.8;
  std::uint64_t seed = 2005;
};

class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusConfig cfg);

  /// Generates the full corpus (O(objects * keywords) time).
  Corpus generate() const;

  /// Draws one keyword-set size from the calibrated distribution.
  int sample_set_size(Rng& rng) const;

  const CorpusConfig& config() const noexcept { return cfg_; }

 private:
  CorpusConfig cfg_;
  double mu_;  ///< log-normal location, calibrated to mean_keywords
  ZipfDistribution keyword_ranks_;
  ZipfDistribution bundle_ranks_;
  std::vector<std::vector<std::size_t>> bundles_;  ///< keyword ranks per bundle
};

}  // namespace hkws::workload
