// Query logs: the stand-in for the PCHome two-week logs (paper §4).
// Only the keyword set and arrival order of each query matter to the
// experiments (the paper uses the same two fields).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/keyword.hpp"

namespace hkws::workload {

struct Query {
  KeywordSet keywords;
  std::uint64_t time = 0;  ///< arrival index (abstract)
};

class QueryLog {
 public:
  QueryLog() = default;
  explicit QueryLog(std::vector<Query> queries);

  const std::vector<Query>& queries() const noexcept { return queries_; }
  std::size_t size() const noexcept { return queries_.size(); }
  const Query& operator[](std::size_t i) const { return queries_[i]; }

  /// Number of distinct query keyword sets.
  std::size_t distinct_count() const;

  /// Fraction of total volume contributed by the `k` most frequent
  /// distinct queries (paper footnote 1: top-10 > 60% per day).
  double top_share(std::size_t k) const;

  /// Frequency per distinct query, most frequent first.
  std::vector<std::pair<KeywordSet, std::uint64_t>> frequencies() const;

 private:
  std::vector<Query> queries_;
};

}  // namespace hkws::workload
