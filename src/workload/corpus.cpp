#include "workload/corpus.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace hkws::workload {

Corpus::Corpus(std::vector<ObjectRecord> records)
    : records_(std::move(records)) {}

Histogram Corpus::keyword_size_histogram() const {
  Histogram h;
  for (const auto& rec : records_)
    h.add(static_cast<std::int64_t>(rec.keywords.size()));
  return h;
}

double Corpus::mean_keywords() const {
  return keyword_size_histogram().hist_mean();
}

std::vector<std::pair<Keyword, std::uint64_t>> Corpus::keyword_frequencies()
    const {
  std::unordered_map<Keyword, std::uint64_t> counts;
  for (const auto& rec : records_)
    for (const auto& w : rec.keywords) ++counts[w];
  std::vector<std::pair<Keyword, std::uint64_t>> out(counts.begin(),
                                                     counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

std::size_t Corpus::vocabulary_size() const {
  std::set<Keyword> vocab;
  for (const auto& rec : records_)
    vocab.insert(rec.keywords.begin(), rec.keywords.end());
  return vocab.size();
}

}  // namespace hkws::workload
