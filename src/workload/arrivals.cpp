#include "workload/arrivals.hpp"

#include <algorithm>
#include <cmath>

namespace hkws::workload {

PoissonArrivals::PoissonArrivals(double queries_per_kilotick,
                                 std::uint64_t seed)
    : mean_gap_(queries_per_kilotick > 0.0 ? 1000.0 / queries_per_kilotick
                                           : 1e12),
      rng_(seed) {}

Ticks PoissonArrivals::next_gap() {
  // Inverse-CDF exponential sample; 1 - u avoids log(0).
  const double u = rng_.next_double();
  const double gap = -std::log(1.0 - u) * mean_gap_;
  return static_cast<Ticks>(std::llround(std::max(gap, 0.0)));
}

BurstyArrivals::BurstyArrivals(double burst_queries_per_kilotick,
                               Ticks burst_ticks, Ticks idle_ticks,
                               std::uint64_t seed)
    : burst_(burst_queries_per_kilotick, seed),
      burst_ticks_(burst_ticks),
      idle_ticks_(idle_ticks) {}

Ticks BurstyArrivals::next_gap() {
  // The Poisson clock only runs during burst windows; every time it crosses
  // a window boundary the wall-clock gap grows by one idle period.
  Ticks gap = burst_.next_gap();
  if (burst_ticks_ == 0) return gap + idle_ticks_;
  Ticks busy_left = gap;
  Ticks wall = 0;
  while (into_burst_ + busy_left >= burst_ticks_) {
    const Ticks used = burst_ticks_ - into_burst_;
    busy_left -= used;
    wall += used + idle_ticks_;
    into_burst_ = 0;
  }
  into_burst_ += busy_left;
  return wall + busy_left;
}

}  // namespace hkws::workload
