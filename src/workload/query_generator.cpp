#include "workload/query_generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <unordered_set>

namespace hkws::workload {

namespace {
double top_share_for(std::size_t n, std::size_t topk, double s) {
  double top = 0, total = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    const double w = std::pow(static_cast<double>(k), -s);
    total += w;
    if (k <= topk) top += w;
  }
  return top / total;
}
}  // namespace

double QueryLogGenerator::solve_zipf_exponent(std::size_t n, std::size_t topk,
                                              double share) {
  // top_share_for is increasing in s; bisect.
  double lo = 0.0, hi = 6.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (top_share_for(n, topk, mid) < share)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

QueryLogGenerator::QueryLogGenerator(const Corpus& corpus, QueryLogConfig cfg)
    : cfg_(cfg),
      popularity_(std::max<std::size_t>(cfg.distinct_queries, 1),
                  solve_zipf_exponent(
                      std::max<std::size_t>(cfg.distinct_queries, 1), 10,
                      cfg.top10_share)) {
  if (corpus.size() == 0)
    throw std::invalid_argument("QueryLogGenerator: empty corpus");
  if (cfg.size_weights.empty())
    throw std::invalid_argument("QueryLogGenerator: empty size_weights");

  // Build the distinct-query universe: each query is m keywords drawn from
  // one object's keyword set, so every query matches at least that object.
  // Keywords above the document-frequency cap are not query-eligible.
  Rng rng(cfg.seed);
  double weight_total = 0;
  for (double w : cfg.size_weights) weight_total += w;

  std::unordered_set<Keyword> too_frequent;
  if (cfg.max_keyword_df < 1.0) {
    const auto limit = static_cast<std::uint64_t>(
        cfg.max_keyword_df * static_cast<double>(corpus.size()));
    for (const auto& [word, count] : corpus.keyword_frequencies()) {
      if (count <= limit) break;  // frequencies are sorted descending
      too_frequent.insert(word);
    }
  }

  std::unordered_set<KeywordSet, KeywordSetHash> seen;
  universe_.reserve(cfg.distinct_queries);
  std::size_t failsafe = 0;
  while (universe_.size() < cfg.distinct_queries &&
         failsafe < cfg.distinct_queries * 200) {
    ++failsafe;
    // Draw the query size from the (normalized) weights.
    double pick = rng.next_double() * weight_total;
    std::size_t m = cfg.size_weights.size();
    for (std::size_t i = 0; i < cfg.size_weights.size(); ++i) {
      if (pick < cfg.size_weights[i]) {
        m = i + 1;
        break;
      }
      pick -= cfg.size_weights[i];
    }
    const auto& rec = corpus[rng.next_below(corpus.size())];
    std::vector<Keyword> eligible;
    for (const auto& w : rec.keywords)
      if (!too_frequent.contains(w)) eligible.push_back(w);
    if (eligible.size() < m) continue;
    // Sample m distinct positions from the eligible keywords.
    std::set<std::size_t> idx;
    while (idx.size() < m) idx.insert(rng.next_below(eligible.size()));
    std::vector<Keyword> chosen;
    chosen.reserve(m);
    for (std::size_t i : idx) chosen.push_back(eligible[i]);
    KeywordSet q(std::move(chosen));
    if (seen.insert(q).second) universe_.push_back(std::move(q));
  }
  if (universe_.empty())
    throw std::runtime_error("QueryLogGenerator: could not build universe");
}

QueryLog QueryLogGenerator::generate() const {
  Rng rng(cfg_.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Query> queries;
  queries.reserve(cfg_.query_count);
  for (std::size_t t = 0; t < cfg_.query_count; ++t) {
    std::size_t rank = popularity_.sample(rng);
    if (rank >= universe_.size()) rank = universe_.size() - 1;
    queries.push_back(Query{universe_[rank], t});
  }
  return QueryLog(std::move(queries));
}

std::vector<KeywordSet> QueryLogGenerator::popular_sets(
    std::size_t m, std::size_t count) const {
  std::vector<KeywordSet> out;
  for (const auto& q : universe_) {
    if (q.size() != m) continue;
    out.push_back(q);
    if (out.size() >= count) break;
  }
  return out;
}

}  // namespace hkws::workload
