// Corpus persistence: load/save the Table-1 record format as TSV so the
// experiments can run on real data (e.g. an actual directory dump) instead
// of the synthetic PCHome substitute.
//
// Format: one record per line, UTF-8, fields separated by tabs:
//   id <TAB> title <TAB> url <TAB> category <TAB> description <TAB> keywords
// where `keywords` is a comma-separated list. Lines starting with '#' and
// blank lines are skipped. Fields must not contain tabs or newlines;
// keywords must not contain commas.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/corpus.hpp"

namespace hkws::workload {

/// Writes the corpus as TSV. Throws std::runtime_error on I/O failure or if
/// a field contains a delimiter.
void save_corpus_tsv(const Corpus& corpus, const std::string& path);
void save_corpus_tsv(const Corpus& corpus, std::ostream& out);

/// Reads a TSV corpus. Throws std::runtime_error on I/O failure or a
/// malformed line (wrong field count, bad id, empty keyword list).
Corpus load_corpus_tsv(const std::string& path);
Corpus load_corpus_tsv(std::istream& in);

}  // namespace hkws::workload
