#include "workload/corpus_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace hkws::workload {

namespace {

void check_field(const std::string& field, const char* name) {
  if (field.find('\t') != std::string::npos ||
      field.find('\n') != std::string::npos)
    throw std::runtime_error(std::string("save_corpus_tsv: field '") + name +
                             "' contains a delimiter");
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

void save_corpus_tsv(const Corpus& corpus, std::ostream& out) {
  out << "# id\ttitle\turl\tcategory\tdescription\tkeywords\n";
  for (const auto& rec : corpus.records()) {
    check_field(rec.title, "title");
    check_field(rec.url, "url");
    check_field(rec.category, "category");
    check_field(rec.description, "description");
    std::string keywords;
    for (const auto& w : rec.keywords) {
      check_field(w, "keyword");
      if (w.find(',') != std::string::npos)
        throw std::runtime_error("save_corpus_tsv: keyword contains a comma");
      if (!keywords.empty()) keywords += ",";
      keywords += w;
    }
    out << rec.id << '\t' << rec.title << '\t' << rec.url << '\t'
        << rec.category << '\t' << rec.description << '\t' << keywords
        << '\n';
  }
  if (!out) throw std::runtime_error("save_corpus_tsv: write failed");
}

void save_corpus_tsv(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("save_corpus_tsv: cannot open " + path);
  save_corpus_tsv(corpus, out);
}

Corpus load_corpus_tsv(std::istream& in) {
  std::vector<ObjectRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, '\t');
    if (fields.size() != 6)
      throw std::runtime_error("load_corpus_tsv: line " +
                               std::to_string(line_no) + ": expected 6 "
                               "fields, got " +
                               std::to_string(fields.size()));
    ObjectRecord rec;
    try {
      rec.id = std::stoull(fields[0]);
    } catch (const std::exception&) {
      throw std::runtime_error("load_corpus_tsv: line " +
                               std::to_string(line_no) + ": bad id '" +
                               fields[0] + "'");
    }
    rec.title = fields[1];
    rec.url = fields[2];
    rec.category = fields[3];
    rec.description = fields[4];
    std::vector<Keyword> words;
    for (auto& w : split(fields[5], ','))
      if (!w.empty()) words.push_back(std::move(w));
    if (words.empty())
      throw std::runtime_error("load_corpus_tsv: line " +
                               std::to_string(line_no) +
                               ": empty keyword list");
    rec.keywords = KeywordSet(std::move(words));
    records.push_back(std::move(rec));
  }
  return Corpus(std::move(records));
}

Corpus load_corpus_tsv(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("load_corpus_tsv: cannot open " + path);
  return load_corpus_tsv(in);
}

}  // namespace hkws::workload
