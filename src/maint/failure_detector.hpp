// Heartbeat failure detector — the sensing half of the self-healing
// maintenance plane. Instead of the oracle-style detection the repair
// harnesses used so far (the test driver *tells* the index which peer
// died), the detector discovers deaths the way a deployed system must:
// periodic pings over the simulated wire, timeout-based suspicion, and a
// configurable number of consecutive missed acks before a death is
// confirmed and reported.
//
// Probing scheme: members are ordered by endpoint id into a logical ring;
// every round, each still-monitored member is pinged by its nearest
// believed-alive ring successor ("maint.ping"), which expects a
// "maint.ack" back within `timeout` ticks. A missed ack marks the target
// *suspected*; `confirmations` consecutive misses confirm the death and
// fire the callback exactly once. An ack at any point clears the
// suspicion, so transient message loss (both kinds are declared lossable
// to the torture fault injector) only delays detection, it cannot
// un-confirm a peer or kill a live one — confirmation here never touches
// the network fabric, it only triggers repair, which is idempotent.
//
// Timer discipline: every armed timer id is tracked and erased first
// thing in its callback, stop() cancels everything, and armed_timers()
// reports the live count — that is what lets the torture harness keep its
// no-dangling-timer invariant while the plane runs forever alongside the
// workload.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/transport.hpp"
#include "sim/network.hpp"

namespace hkws::obs {
class WindowedMetrics;
}

namespace hkws::maint {

class FailureDetector {
 public:
  struct Config {
    sim::Time period = 40;   ///< ping round interval (ticks)
    sim::Time timeout = 30;  ///< ack wait per ping; must be < period
    int confirmations = 2;   ///< consecutive misses before death is confirmed
    std::size_t ping_bytes = 16;  ///< wire size of ping and ack
  };

  /// Invoked exactly once per confirmed death, from a timer event.
  using DeathCallback = std::function<void(sim::EndpointId)>;

  /// @param net       fabric the pings travel on (not owned)
  /// @param on_death  confirmed-death sink (the repair plane)
  FailureDetector(net::Transport& net, Config cfg, DeathCallback on_death);

  /// Begins monitoring `members` (typically every peer in the deployment)
  /// and arms the periodic ping round. Idempotent while running.
  void start(const std::vector<sim::EndpointId>& members);

  /// Cancels every armed timer and stops probing. In-flight ping/ack
  /// deliveries already in the event queue are ignored on arrival.
  void stop();

  bool running() const noexcept { return running_; }

  /// Oracle hook for metrics only: records when a peer truly failed so the
  /// confirmation can report detection latency ("maint.detect_latency").
  /// Never consulted by the detection logic itself.
  void note_true_failure(sim::EndpointId ep);

  /// Fast-path liveness signal from the transport: the wire to `ep`
  /// positively died (TcpTransport's peer-down observer). Confirms the
  /// death immediately — no heartbeat misses to wait out — cancelling any
  /// outstanding ack timer first. Counted "maint.transport_down". No-op if
  /// not running, `ep` is not a monitored member, or already confirmed.
  /// Must be invoked strand/event-loop-serialized like every other entry
  /// point (TcpTransport marshals its observer onto the dispatch strand).
  void note_transport_down(sim::EndpointId ep);

  /// Members with >= 1 consecutive missed ack, not yet confirmed dead.
  std::size_t suspected_count() const;
  /// Members confirmed dead so far.
  std::size_t confirmed_count() const noexcept { return confirmed_; }
  /// Timers currently armed (round timer + outstanding ack timeouts).
  std::size_t armed_timers() const noexcept {
    return ack_timers_.size() + (round_timer_ != 0 ? 1 : 0);
  }

  const Config& config() const noexcept { return cfg_; }

  /// Optional per-window observability sink (not owned, may be nullptr).
  void set_windows(obs::WindowedMetrics* windows) { windows_ = windows; }

 private:
  struct Member {
    int missed = 0;        ///< consecutive missed acks
    bool confirmed = false;
    net::Transport::TimerId ack_timer = 0;  ///< 0 = no ping outstanding
  };

  void round();
  void probe(sim::EndpointId target);
  void on_ack(std::uint64_t epoch, sim::EndpointId target);
  void on_ack_timeout(sim::EndpointId target);
  void confirm(sim::EndpointId target);
  /// Nearest believed-alive member after `target` in endpoint-id ring
  /// order; 0 if no other candidate remains.
  sim::EndpointId prober_for(sim::EndpointId target) const;

  net::Transport& net_;
  Config cfg_;
  DeathCallback on_death_;
  obs::WindowedMetrics* windows_ = nullptr;

  bool running_ = false;
  /// Bumped on stop(); stale in-flight deliveries compare and bail.
  std::uint64_t epoch_ = 0;
  std::map<sim::EndpointId, Member> members_;
  std::map<net::Transport::TimerId, sim::EndpointId> ack_timers_;
  net::Transport::TimerId round_timer_ = 0;
  std::size_t confirmed_ = 0;
  /// ep -> sim-time of the true failure (metrics oracle).
  std::map<sim::EndpointId, sim::Time> true_failures_;
};

}  // namespace hkws::maint
