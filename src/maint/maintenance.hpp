// MaintenancePlane — the repair half of the self-healing maintenance
// plane. It couples the heartbeat FailureDetector to the overlay's and
// index's repair machinery, replacing the all-at-once repair sweeps the
// harnesses used to run in zero simulated time with *incremental*
// background work on the simulation event queue:
//
//   * confirmed death  ->  schedules a budget of DHT stabilization rounds
//     (routing heal) and (re)activates the repair ticker
//   * repair tick      ->  runs a few stabilization rounds, then one
//     rate-limited repair slice (at most entries_per_tick index entries
//     re-homed / mirror-resynced and refs_per_tick replica copies pushed)
//   * idle ticks       ->  once the backlog stays empty the ticker disarms
//     itself; the next confirmed death re-arms it
//
// Serving continues throughout — that is the point: searches race repair,
// degrade via the index's failover path, and recover completeness once
// converged() reports the plane has drained its backlog.
//
// Accounting: Chord/Pastry stabilization charges lookup hops to
// "net.messages" synchronously, without a matching wire delivery. The
// plane measures the "net.messages" counter delta across each (purely
// synchronous) stabilize call and reports the sum as
// synthetic_messages(), which the torture harness adds to its message
// conservation identity. All other plane traffic — pings, acks, replica
// pushes, mirror resync reindexes — consists of real conserved sends.
#pragma once

#include <cstdint>
#include <functional>

#include "maint/failure_detector.hpp"

namespace hkws::obs {
class Tracer;
class WindowedMetrics;
}  // namespace hkws::obs

namespace hkws::maint {

class MaintenancePlane {
 public:
  struct Config {
    FailureDetector::Config detector;
    sim::Time repair_interval = 25;  ///< ticks between repair slices
    std::size_t entries_per_tick = 8;  ///< index entries re-homed per slice
    std::size_t refs_per_tick = 8;     ///< replica copies pushed per slice
    int stabilize_rounds_per_tick = 3;
    /// Stabilization rounds queued per confirmed death (Chord fixes one
    /// finger per node per round, so routing heal needs a batch of them).
    int stabilize_rounds_per_death = 30;
    /// Hot-cell replication cadence (0 = ticker off). Unlike the repair
    /// ticker — armed by confirmed deaths, disarmed when idle — the
    /// replication ticker runs for the plane's whole lifetime: popularity
    /// shifts without anyone dying.
    sim::Time replication_interval = 0;
    /// Index entries copied to hot-cell replicas per replication round.
    std::size_t replica_entries_per_tick = 64;
  };

  /// One overlay stabilization round (e.g. ChordNetwork::stabilize_all).
  /// Must be synchronous: the plane measures its "net.messages" charge as
  /// a counter delta around the call.
  using StabilizeFn = std::function<void()>;
  /// One budgeted repair slice: (entry_budget, ref_budget) -> work done
  /// (e.g. KeywordSearchService::repair_step).
  using RepairStepFn = std::function<std::uint64_t(std::size_t, std::size_t)>;
  /// Outstanding repair work (e.g. KeywordSearchService::repair_backlog).
  using BacklogFn = std::function<std::size_t()>;
  /// One budgeted hot-cell replication round: max_entries -> entries copied
  /// (e.g. KeywordSearchService::replication_step).
  using ReplicationFn = std::function<std::uint64_t(std::size_t)>;

  MaintenancePlane(net::Transport& net, Config cfg, StabilizeFn stabilize,
                   RepairStepFn repair_step, BacklogFn backlog);

  /// Installs the hot-cell replication hook. Call before start(); the
  /// ticker only arms when both the hook and Config::replication_interval
  /// are set.
  void set_replication(ReplicationFn fn) { replicate_ = std::move(fn); }

  /// Starts the failure detector over `members`. The repair ticker stays
  /// dormant until the first confirmed death; the replication ticker (if
  /// configured) arms immediately.
  void start(const std::vector<sim::EndpointId>& members);

  /// Stops detector and ticker, cancelling every armed timer.
  void stop();

  bool running() const noexcept { return detector_.running(); }

  /// Metrics oracle passthrough: when the harness kills a peer it reports
  /// the truth here so detection latency can be measured.
  void note_true_failure(sim::EndpointId ep) {
    detector_.note_true_failure(ep);
  }

  /// True when no stabilization rounds are pending, the repair backlog is
  /// empty, and the detector holds no unresolved suspicion — i.e. every
  /// injected failure has been detected and fully repaired.
  bool converged() const;

  /// Lookup-hop charges incurred inside stabilize calls: counted into
  /// "net.messages" without a wire delivery, so conservation checks must
  /// add this term.
  std::uint64_t synthetic_messages() const noexcept { return synthetic_; }

  /// Total units of repair work (entries moved + copies pushed) so far.
  std::uint64_t repair_work_done() const noexcept { return work_done_; }

  /// Timers currently armed by the plane (detector's + the repair and
  /// replication tickers).
  std::size_t armed_timers() const noexcept {
    return detector_.armed_timers() + (repair_timer_ != 0 ? 1 : 0) +
           (replication_timer_ != 0 ? 1 : 0);
  }

  FailureDetector& detector() noexcept { return detector_; }
  const FailureDetector& detector() const noexcept { return detector_; }
  const Config& config() const noexcept { return cfg_; }

  /// Optional observability sinks (not owned, may be nullptr).
  void set_windows(obs::WindowedMetrics* windows);
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  void on_death(sim::EndpointId ep);
  void tick();
  void arm_ticker();
  void replication_tick();
  void arm_replication_ticker();
  /// Runs one stabilize round, charging its synchronous lookup hops to
  /// synthetic_.
  void stabilize_once();

  net::Transport& net_;
  Config cfg_;
  StabilizeFn stabilize_;
  RepairStepFn repair_step_;
  BacklogFn backlog_;
  ReplicationFn replicate_;
  FailureDetector detector_;
  obs::WindowedMetrics* windows_ = nullptr;
  obs::Tracer* tracer_ = nullptr;

  net::Transport::TimerId repair_timer_ = 0;
  net::Transport::TimerId replication_timer_ = 0;
  int pending_stabilize_ = 0;
  int idle_ticks_ = 0;
  /// Idle slices (no work, empty backlog) before the ticker disarms.
  static constexpr int kIdleTicksToDisarm = 2;
  std::uint64_t synthetic_ = 0;
  std::uint64_t work_done_ = 0;
  bool burst_open_ = false;  ///< a "repair.burst" tracer span is open
};

}  // namespace hkws::maint
