#include "maint/failure_detector.hpp"

#include "obs/windowed.hpp"

namespace hkws::maint {

FailureDetector::FailureDetector(net::Transport& net, Config cfg,
                                 DeathCallback on_death)
    : net_(net), cfg_(cfg), on_death_(std::move(on_death)) {}

void FailureDetector::start(const std::vector<sim::EndpointId>& members) {
  if (running_) return;
  running_ = true;
  for (sim::EndpointId ep : members) members_.emplace(ep, Member{});
  round_timer_ = net_.set_timer(cfg_.period, [this] { round(); });
}

void FailureDetector::stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;
  if (round_timer_ != 0) {
    net_.cancel_timer(round_timer_);
    round_timer_ = 0;
  }
  for (const auto& [id, ep] : ack_timers_) {
    net_.cancel_timer(id);
    members_[ep].ack_timer = 0;
  }
  ack_timers_.clear();
}

void FailureDetector::note_true_failure(sim::EndpointId ep) {
  true_failures_.emplace(ep, net_.now());
}

void FailureDetector::note_transport_down(sim::EndpointId ep) {
  if (!running_) return;
  const auto it = members_.find(ep);
  if (it == members_.end() || it->second.confirmed) return;
  Member& m = it->second;
  if (m.ack_timer != 0) {
    net_.cancel_timer(m.ack_timer);
    ack_timers_.erase(m.ack_timer);
    m.ack_timer = 0;
  }
  net_.metrics().count("maint.transport_down");
  confirm(ep);
}

std::size_t FailureDetector::suspected_count() const {
  std::size_t suspected = 0;
  for (const auto& [ep, m] : members_)
    if (!m.confirmed && m.missed > 0) ++suspected;
  return suspected;
}

void FailureDetector::round() {
  round_timer_ = 0;
  if (!running_) return;
  for (const auto& [ep, m] : members_) {
    // One ping in flight per target at a time; the ack timeout chains the
    // suspicion forward, so a slow target is not probed twice.
    if (!m.confirmed && m.ack_timer == 0) probe(ep);
  }
  if (windows_ != nullptr) {
    windows_->gauge(net_.now(), "detector.suspected",
                    static_cast<double>(suspected_count()));
  }
  round_timer_ = net_.set_timer(cfg_.period, [this] { round(); });
}

sim::EndpointId FailureDetector::prober_for(sim::EndpointId target) const {
  // Ring successor by endpoint id among trusted members. A dead-but-
  // unconfirmed prober would swallow its target's ack and manufacture a
  // false suspicion, so suspected members are skipped as probers while
  // their own probe is pending (if every candidate is suspected, any
  // unconfirmed one serves as a last resort).
  sim::EndpointId fallback = 0;
  auto next = members_.upper_bound(target);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (next == members_.end()) next = members_.begin();
    if (next->first != target && !next->second.confirmed) {
      if (next->second.missed == 0) return next->first;
      if (fallback == 0) fallback = next->first;
    }
    ++next;
  }
  return fallback;
}

void FailureDetector::probe(sim::EndpointId target) {
  const sim::EndpointId prober = prober_for(target);
  if (prober == 0) return;  // nobody left to ask
  const std::uint64_t epoch = epoch_;
  // Ping prober -> target. If the target is gone the fabric counts only
  // "net.dropped" and no ack ever fires; the timeout below converts that
  // silence into suspicion.
  net_.send(prober, target, "maint.ping", cfg_.ping_bytes,
            [this, epoch, prober, target] {
              if (epoch != epoch_) return;
              net_.send(target, prober, "maint.ack", cfg_.ping_bytes,
                        [this, epoch, target] { on_ack(epoch, target); });
            });
  Member& m = members_[target];
  m.ack_timer = net_.set_timer(
      cfg_.timeout, [this, target] { on_ack_timeout(target); });
  ack_timers_.emplace(m.ack_timer, target);
}

void FailureDetector::on_ack(std::uint64_t epoch, sim::EndpointId target) {
  if (epoch != epoch_) return;
  Member& m = members_[target];
  m.missed = 0;
  if (m.ack_timer != 0) {
    net_.cancel_timer(m.ack_timer);
    ack_timers_.erase(m.ack_timer);
    m.ack_timer = 0;
  }
}

void FailureDetector::on_ack_timeout(sim::EndpointId target) {
  Member& m = members_[target];
  ack_timers_.erase(m.ack_timer);
  m.ack_timer = 0;
  if (!running_ || m.confirmed) return;
  ++m.missed;
  net_.metrics().count("maint.suspicions");
  // Re-probing waits for the next round rather than chaining off the
  // timeout: by then a dead prober has picked up its own suspicion and is
  // no longer trusted, so its target's false suspicion clears instead of
  // compounding into a false confirmation.
  if (m.missed >= cfg_.confirmations) confirm(target);
}

void FailureDetector::confirm(sim::EndpointId target) {
  Member& m = members_[target];
  m.confirmed = true;
  ++confirmed_;
  const sim::Time now = net_.now();
  net_.metrics().count("maint.confirmed");
  const auto it = true_failures_.find(target);
  if (it != true_failures_.end()) {
    net_.metrics().observe("maint.detect_latency",
                           static_cast<double>(now - it->second));
    if (windows_ != nullptr)
      windows_->observe(now, "detector.latency",
                        static_cast<double>(now - it->second));
  }
  if (windows_ != nullptr) windows_->count(now, "detector.confirmed");
  if (on_death_) on_death_(target);
}

}  // namespace hkws::maint
