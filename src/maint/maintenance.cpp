#include "maint/maintenance.hpp"

#include "obs/trace.hpp"
#include "obs/windowed.hpp"

namespace hkws::maint {

MaintenancePlane::MaintenancePlane(net::Transport& net, Config cfg,
                                   StabilizeFn stabilize,
                                   RepairStepFn repair_step, BacklogFn backlog)
    : net_(net),
      cfg_(cfg),
      stabilize_(std::move(stabilize)),
      repair_step_(std::move(repair_step)),
      backlog_(std::move(backlog)),
      detector_(net, cfg.detector,
                [this](sim::EndpointId ep) { on_death(ep); }) {}

void MaintenancePlane::start(const std::vector<sim::EndpointId>& members) {
  detector_.start(members);
  arm_replication_ticker();
}

void MaintenancePlane::stop() {
  detector_.stop();
  if (repair_timer_ != 0) {
    net_.cancel_timer(repair_timer_);
    repair_timer_ = 0;
  }
  if (replication_timer_ != 0) {
    net_.cancel_timer(replication_timer_);
    replication_timer_ = 0;
  }
  if (burst_open_ && tracer_ != nullptr) {
    tracer_->end(net_.now(), 0);
    burst_open_ = false;
  }
}

void MaintenancePlane::set_windows(obs::WindowedMetrics* windows) {
  windows_ = windows;
  detector_.set_windows(windows);
}

bool MaintenancePlane::converged() const {
  return pending_stabilize_ == 0 && detector_.suspected_count() == 0 &&
         (!backlog_ || backlog_() == 0);
}

void MaintenancePlane::on_death(sim::EndpointId ep) {
  pending_stabilize_ += cfg_.stabilize_rounds_per_death;
  idle_ticks_ = 0;
  if (tracer_ != nullptr) {
    tracer_->instant(net_.now(), 0, "maint.confirm", "maint", ep);
    if (!burst_open_) {
      tracer_->begin(net_.now(), 0, "repair.burst", "maint", ep);
      burst_open_ = true;
    }
  }
  arm_ticker();
}

void MaintenancePlane::arm_ticker() {
  if (repair_timer_ != 0 || !detector_.running()) return;
  repair_timer_ = net_.set_timer(cfg_.repair_interval,
                                         [this] { tick(); });
}

void MaintenancePlane::arm_replication_ticker() {
  if (replication_timer_ != 0 || !detector_.running()) return;
  if (!replicate_ || cfg_.replication_interval == 0) return;
  replication_timer_ =
      net_.set_timer(cfg_.replication_interval, [this] { replication_tick(); });
}

void MaintenancePlane::replication_tick() {
  replication_timer_ = 0;
  const std::uint64_t copied = replicate_(cfg_.replica_entries_per_tick);
  if (copied > 0) net_.metrics().count("maint.replica_entries", copied);
  if (windows_ != nullptr && copied > 0)
    windows_->count(net_.now(), "replica.entries_copied", copied);
  // Always-on while the plane runs: demand can shift a cell hot (or cold)
  // at any time, so there is no idle-disarm here.
  arm_replication_ticker();
}

void MaintenancePlane::stabilize_once() {
  const std::uint64_t before = net_.metrics().counter("net.messages");
  stabilize_();
  synthetic_ += net_.metrics().counter("net.messages") - before;
}

void MaintenancePlane::tick() {
  repair_timer_ = 0;
  // Routing heal first: a few stabilization rounds per slice, so the
  // overlay's successor lists and fingers converge while entry repair is
  // still draining.
  for (int i = 0; i < cfg_.stabilize_rounds_per_tick && pending_stabilize_ > 0;
       ++i, --pending_stabilize_)
    stabilize_once();
  std::uint64_t work = 0;
  if (repair_step_) work = repair_step_(cfg_.entries_per_tick,
                                        cfg_.refs_per_tick);
  work_done_ += work;
  const std::size_t backlog = backlog_ ? backlog_() : 0;
  const sim::Time now = net_.now();
  if (work > 0) net_.metrics().count("maint.repair_work", work);
  if (windows_ != nullptr) {
    windows_->gauge(now, "repair.backlog", static_cast<double>(backlog));
    if (work > 0) windows_->count(now, "repair.entries_moved", work);
  }
  if (tracer_ != nullptr)
    tracer_->instant(now, 0, "repair.tick", "maint", work, backlog);
  if (work == 0 && backlog == 0 && pending_stabilize_ == 0) {
    if (++idle_ticks_ >= kIdleTicksToDisarm) {
      // Converged: disarm until the next confirmed death re-arms us.
      if (burst_open_ && tracer_ != nullptr) {
        tracer_->end(now, 0);
        burst_open_ = false;
      }
      return;
    }
  } else {
    idle_ticks_ = 0;
  }
  arm_ticker();
}

}  // namespace hkws::maint
