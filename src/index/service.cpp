#include "index/service.hpp"

#include <stdexcept>
#include <utility>

namespace hkws::index {

KeywordSearchService::KeywordSearchService(dht::Overlay& overlay,
                                           Options options)
    : options_(options),
      dolr_(overlay, dht::Dolr::Config{options.replication_factor}) {
  OverlayIndex::Config cfg;
  cfg.r = options.r;
  cfg.hash_seed = options.hash_seed;
  cfg.cache_capacity = options.cache_capacity;
  cfg.step_timeout = options.step_timeout;
  cfg.max_retries = options.max_retries;
  cfg.failover_after = options.failover_after;
  cfg.hot = options.hot_cells;
  if (options.mirror_index) {
    mirrored_ = std::make_unique<MirroredIndex>(dolr_, cfg);
    mirrored_->set_windows(options.windows);
  } else {
    plain_ = std::make_unique<OverlayIndex>(dolr_, cfg);
  }
}

OverlayIndex& KeywordSearchService::primary_index() {
  return mirrored_ ? mirrored_->primary() : *plain_;
}

const OverlayIndex& KeywordSearchService::primary_index() const {
  return mirrored_ ? mirrored_->primary() : *plain_;
}

std::uint64_t KeywordSearchService::replication_step(std::size_t max_entries) {
  return primary_index().replication_step(max_entries);
}

std::size_t KeywordSearchService::replication_backlog() const {
  return primary_index().replication_backlog();
}

void KeywordSearchService::publish(sim::EndpointId peer, ObjectId object,
                                   const KeywordSet& keywords,
                                   OverlayIndex::PublishCallback done) {
  if (mirrored_)
    mirrored_->publish(peer, object, keywords, std::move(done));
  else
    plain_->publish(peer, object, keywords, std::move(done));
}

void KeywordSearchService::withdraw(sim::EndpointId peer, ObjectId object,
                                    const KeywordSet& keywords,
                                    OverlayIndex::WithdrawCallback done) {
  if (mirrored_)
    mirrored_->withdraw(peer, object, keywords, std::move(done));
  else
    plain_->withdraw(peer, object, keywords, std::move(done));
}

KeywordSearchService::Answer KeywordSearchService::decorate(
    SearchResult result, const KeywordSet& query,
    const SearchOptions& options) const {
  Answer answer;
  answer.stats = result.stats;
  answer.hits = std::move(result.hits);
  order_hits(answer.hits, query, options.order);
  if (options.refinement_categories != 0)
    answer.refinements = sample_refinements(answer.hits, query, 3,
                                            options.refinement_categories);
  if (options.suggest_expansion)
    answer.expansion = expand_query(answer.hits, query);
  return answer;
}

void KeywordSearchService::pin(sim::EndpointId searcher,
                               const KeywordSet& keywords,
                               AnswerCallback done) {
  auto wrap = [this, keywords, done = std::move(done)](
                  const SearchResult& r) {
    done(decorate(r, keywords, SearchOptions{}));
  };
  if (mirrored_)
    mirrored_->pin_search(searcher, keywords, std::move(wrap));
  else
    plain_->pin_search(searcher, keywords, std::move(wrap));
}

std::uint64_t KeywordSearchService::search(sim::EndpointId searcher,
                                           const KeywordSet& query,
                                           const SearchOptions& options,
                                           AnswerCallback done) {
  auto wrap = [this, query, options, done = std::move(done)](
                  const SearchResult& r) {
    done(decorate(r, query, options));
  };
  if (mirrored_)
    return mirrored_->superset_search(searcher, query, options.limit,
                                      options.strategy, std::move(wrap));
  return plain_->superset_search(searcher, query, options.limit,
                                 options.strategy, std::move(wrap));
}

bool KeywordSearchService::cancel_search(std::uint64_t ticket) {
  return mirrored_ ? mirrored_->cancel(ticket) : plain_->cancel(ticket);
}

std::uint64_t KeywordSearchService::open_browse(sim::EndpointId searcher,
                                                const KeywordSet& query) {
  return primary_index().open_cumulative(searcher, query);
}

void KeywordSearchService::browse_next(std::uint64_t session,
                                       std::size_t page_size,
                                       AnswerCallback done) {
  primary_index().cumulative_next(
      session, page_size,
      [this, done = std::move(done)](const SearchResult& r) {
        Answer answer;
        answer.hits = r.hits;
        answer.stats = r.stats;
        done(answer);
      });
}

bool KeywordSearchService::browse_done(std::uint64_t session) const {
  return mirrored_ ? mirrored_->primary().cumulative_exhausted(session)
                   : plain_->cumulative_exhausted(session);
}

void KeywordSearchService::close_browse(std::uint64_t session) {
  primary_index().close_cumulative(session);
}

void KeywordSearchService::resolve(sim::EndpointId reader, ObjectId object,
                                   dht::Dolr::ReadCallback done) {
  dolr_.read(reader, object, std::move(done));
}

std::uint64_t KeywordSearchService::repair() {
  std::uint64_t moved = 0;
  if (mirrored_) {
    mirrored_->purge_dead();
    moved += mirrored_->repair_placement();
  } else {
    plain_->purge_dead();
    moved += plain_->repair_placement();
  }
  dolr_.repair_replicas();
  return moved;
}

std::uint64_t KeywordSearchService::repair_step(std::size_t entry_budget,
                                                std::size_t ref_budget) {
  std::uint64_t work = 0;
  if (mirrored_) {
    mirrored_->purge_dead();
    const std::uint64_t moved = mirrored_->repair_placement(entry_budget);
    work += moved;
    const std::size_t left =
        entry_budget > moved ? entry_budget - static_cast<std::size_t>(moved)
                             : 0;
    work += mirrored_->resync(left);
  } else {
    plain_->purge_dead();
    work += plain_->repair_placement(entry_budget);
  }
  work += dolr_.repair_replicas(ref_budget);
  return work;
}

std::size_t KeywordSearchService::repair_backlog() const {
  std::size_t backlog = dolr_.replication_backlog();
  if (mirrored_)
    backlog += mirrored_->misplaced_entries() + mirrored_->resync_backlog();
  else
    backlog += plain_->misplaced_entries() + plain_->replication_backlog();
  return backlog;
}

}  // namespace hkws::index
