#include "index/index_table.hpp"

namespace hkws::index {

bool IndexTable::add(const KeywordSet& keywords, ObjectId object) {
  const auto [it, fresh] = entries_.try_emplace(keywords);
  const bool inserted = it->second.insert(object).second;
  if (inserted) ++objects_;
  if (fresh) {
    const std::uint64_t sig = keywords.signature();
    for (const Keyword& w : it->first) postings_[w].insert(Posting{it, sig});
  }
  return inserted;
}

bool IndexTable::remove(const KeywordSet& keywords, ObjectId object) {
  const auto it = entries_.find(keywords);
  if (it == entries_.end()) return false;
  if (it->second.erase(object) == 0) return false;
  --objects_;
  if (it->second.empty()) {
    for (const Keyword& w : it->first) {
      const auto pit = postings_.find(w);
      pit->second.erase(Posting{it, 0});  // ordered by keyword set; sig unused
      if (pit->second.empty()) postings_.erase(pit);
    }
    entries_.erase(it);
  }
  return true;
}

std::vector<ObjectId> IndexTable::exact(const KeywordSet& keywords) const {
  const auto it = entries_.find(keywords);
  if (it == entries_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void IndexTable::for_each_superset(
    const KeywordSet& query,
    const std::function<bool(const KeywordSet&, const std::set<ObjectId>&)>&
        fn) const {
  ++scan_.scans;
  scan_.linear_equivalent += entries_.size();

  // The empty query matches every entry; there is no posting list to
  // intersect, so walk the map directly (same order either way).
  if (query.empty()) {
    for (const auto& [k, objects] : entries_) {
      ++scan_.candidates;
      ++scan_.matches;
      if (!fn(k, objects)) return;
    }
    return;
  }

  // Every superset entry appears on each query keyword's posting list, so
  // it suffices to scan the smallest one. A query keyword nobody indexes
  // means no supersets at all.
  const PostingList* smallest = nullptr;
  for (const Keyword& w : query) {
    const auto pit = postings_.find(w);
    if (pit == postings_.end()) return;
    if (smallest == nullptr || pit->second.size() < smallest->size())
      smallest = &pit->second;
  }

  const std::uint64_t sig_q = query.signature();
  for (const Posting& p : *smallest) {
    ++scan_.candidates;
    if ((sig_q & ~p.sig) != 0) {
      ++scan_.signature_rejects;
      continue;
    }
    if (p.it->first.size() < query.size()) continue;
    ++scan_.subset_checks;
    if (!query.subset_of(p.it->first)) continue;
    ++scan_.matches;
    if (!fn(p.it->first, p.it->second)) return;
  }
}

void IndexTable::for_each_superset_linear(
    const KeywordSet& query,
    const std::function<bool(const KeywordSet&, const std::set<ObjectId>&)>&
        fn) const {
  for (const auto& [k, objects] : entries_) {
    if (k.size() < query.size()) continue;
    if (!query.subset_of(k)) continue;
    if (!fn(k, objects)) return;
  }
}

std::vector<Hit> IndexTable::supersets(const KeywordSet& query,
                                       std::size_t limit,
                                       bool* truncated) const {
  std::vector<Hit> hits;
  supersets_into(query, limit, truncated, hits);
  return hits;
}

void IndexTable::supersets_into(const KeywordSet& query, std::size_t limit,
                                bool* truncated,
                                std::vector<Hit>& out) const {
  out.clear();
  bool cut = false;
  for_each_superset(query, [&](const KeywordSet& k,
                               const std::set<ObjectId>& objects) {
    // Re-check at entry granularity too: when the previous entry filled the
    // batch exactly, the next matching entry proves objects were left out.
    if (limit != 0 && out.size() >= limit) {
      cut = true;
      return false;
    }
    for (ObjectId o : objects) {
      if (limit != 0 && out.size() >= limit) {
        cut = true;
        return false;
      }
      out.push_back(Hit{o, k});
    }
    return true;
  });
  if (truncated != nullptr) *truncated = cut;
}

}  // namespace hkws::index
