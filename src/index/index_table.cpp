#include "index/index_table.hpp"

namespace hkws::index {

bool IndexTable::add(const KeywordSet& keywords, ObjectId object) {
  const bool inserted = entries_[keywords].insert(object).second;
  if (inserted) ++objects_;
  return inserted;
}

bool IndexTable::remove(const KeywordSet& keywords, ObjectId object) {
  const auto it = entries_.find(keywords);
  if (it == entries_.end()) return false;
  if (it->second.erase(object) == 0) return false;
  --objects_;
  if (it->second.empty()) entries_.erase(it);
  return true;
}

std::vector<ObjectId> IndexTable::exact(const KeywordSet& keywords) const {
  const auto it = entries_.find(keywords);
  if (it == entries_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void IndexTable::for_each_superset(
    const KeywordSet& query,
    const std::function<bool(const KeywordSet&, const std::set<ObjectId>&)>&
        fn) const {
  for (const auto& [k, objects] : entries_) {
    if (k.size() < query.size()) continue;
    if (!query.subset_of(k)) continue;
    if (!fn(k, objects)) return;
  }
}

std::vector<Hit> IndexTable::supersets(const KeywordSet& query,
                                       std::size_t limit) const {
  std::vector<Hit> hits;
  for_each_superset(query, [&](const KeywordSet& k,
                               const std::set<ObjectId>& objects) {
    for (ObjectId o : objects) {
      if (limit != 0 && hits.size() >= limit) return false;
      hits.push_back(Hit{o, k});
    }
    return limit == 0 || hits.size() < limit;
  });
  return hits;
}

}  // namespace hkws::index
