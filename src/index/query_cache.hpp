// Per-node FIFO query cache (paper §4, third experiment). The paper caches
// "information about the nodes visited in earlier queries" (discussion of
// Lemma 3.3) and manages it with plain FIFO replacement, with capacity
// alpha * |O| / 2^r — a fraction alpha of the average per-node index size.
//
// What we cache, concretely: for a query keyword set K answered at this
// node, the traversal summary — which subhypercube nodes contributed
// matches (in search order, with their match counts) and whether the whole
// subtree was covered. A later identical query can then contact only the
// contributing nodes (for fresh results), skipping the empty bulk of the
// subhypercube; that is where nearly all of the cacheless cost goes.
// Occupancy is counted in contributor records, the cache's analogue of
// index entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/keyword.hpp"
#include "cube/hypercube.hpp"

namespace hkws::index {

/// Summary of a completed (or truncated) superset-search traversal.
struct CachedTraversal {
  /// Contributing nodes in the order the search visited them, with the
  /// number of matching objects each returned.
  std::vector<std::pair<cube::CubeId, std::uint32_t>> contributors;
  /// True if the traversal covered the entire subhypercube, so the
  /// contributor list is exhaustive (required to honor 100% recall from
  /// cache).
  bool complete = false;

  std::size_t records() const noexcept {
    // An empty-but-complete summary still occupies one record.
    return contributors.empty() ? 1 : contributors.size();
  }
};

class QueryCache {
 public:
  /// @param capacity_records  max total contributor records; 0 disables
  explicit QueryCache(std::size_t capacity_records = 0);

  /// Returns the cached traversal for `query`, or nullptr. Counts a hit or
  /// a miss. FIFO (not LRU): a hit does not refresh the entry's age.
  const CachedTraversal* lookup(const KeywordSet& query);

  /// Caches `summary` under `query`, evicting oldest entries as needed.
  /// Summaries larger than the whole capacity are not cached. Re-inserting
  /// an existing key replaces the value but keeps its queue position.
  void insert(const KeywordSet& query, CachedTraversal summary);

  /// Drops `query` if present (invalidation on index insert/delete).
  void erase(const KeywordSet& query);

  /// Drops every entry whose key satisfies `pred` (bulk invalidation when
  /// the local index table changes). O(entries).
  template <typename Pred>
  void erase_if(Pred&& pred) {
    for (auto it = fifo_.begin(); it != fifo_.end();) {
      if (pred(*it)) {
        const auto mit = map_.find(*it);
        occupancy_ -= mit->second.value.records();
        map_.erase(mit);
        it = fifo_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void clear();

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t occupancy() const noexcept { return occupancy_; }
  std::size_t entry_count() const noexcept { return map_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  void evict_oldest();

  struct Slot {
    std::list<KeywordSet>::iterator fifo_pos;
    CachedTraversal value;
  };

  std::size_t capacity_;
  std::size_t occupancy_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<KeywordSet> fifo_;  // front = oldest
  std::unordered_map<KeywordSet, Slot, KeywordSetHash> map_;
};

}  // namespace hkws::index
