// Per-node FIFO query cache (paper §4, third experiment). The paper caches
// "information about the nodes visited in earlier queries" (discussion of
// Lemma 3.3) and manages it with plain FIFO replacement, with capacity
// alpha * |O| / 2^r — a fraction alpha of the average per-node index size.
//
// What we cache, concretely: for a query keyword set K answered at this
// node, the traversal summary — which subhypercube nodes contributed
// matches (in search order, with their match counts) and whether the whole
// subtree was covered. A later identical query can then contact only the
// contributing nodes (for fresh results), skipping the empty bulk of the
// subhypercube; that is where nearly all of the cacheless cost goes.
// Occupancy is counted in contributor records, the cache's analogue of
// index entries.
//
// Freshness: a cached traversal for query Q lives at the node for F_h(Q),
// but the objects it summarizes hang off *descendant* cube nodes, so a
// mutation elsewhere in the subhypercube can silently stale it. Callers
// therefore stamp entries with the index's mutation epoch on insert and pass
// the current epoch on lookup; an entry older than the current epoch is
// treated as a miss and dropped (a conservative stand-in for per-subtree
// leases). Counted under stale_hits().
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/keyword.hpp"
#include "cube/hypercube.hpp"

namespace hkws::index {

/// Summary of a completed (or truncated) superset-search traversal.
struct CachedTraversal {
  /// Contributing nodes in the order the search visited them, with the
  /// number of matching objects each returned.
  std::vector<std::pair<cube::CubeId, std::uint32_t>> contributors;
  /// True if the traversal covered the entire subhypercube, so the
  /// contributor list is exhaustive (required to honor 100% recall from
  /// cache).
  bool complete = false;

  std::size_t records() const noexcept {
    // An empty-but-complete summary still occupies one record.
    return contributors.empty() ? 1 : contributors.size();
  }
};

class QueryCache {
 public:
  /// @param capacity_records  max total contributor records; 0 disables
  explicit QueryCache(std::size_t capacity_records = 0);

  /// Returns the cached traversal for `query`, or nullptr. Counts a hit or
  /// a miss. FIFO (not LRU): a hit does not refresh the entry's age.
  /// An entry stamped with an epoch older than `epoch` is stale: it is
  /// dropped and counted as a miss (plus stale_hits()).
  const CachedTraversal* lookup(const KeywordSet& query,
                                std::uint64_t epoch = 0);

  /// Caches `summary` under `query` stamped with `epoch`, evicting oldest
  /// entries as needed. A summary that would not leave room for any other
  /// entry (records >= capacity) is not cached — admitting it would evict
  /// every prior record for one query's benefit — and any previously cached
  /// summary for the same query is erased, since serving it after the
  /// refresh would be stale. Exception: a capacity-1 cache admits exact-fit
  /// one-record summaries, replacing its single entry. Re-inserting an
  /// existing key replaces the value and moves the entry to the back of the
  /// FIFO queue: eviction is strictly FIFO by last write.
  void insert(const KeywordSet& query, CachedTraversal summary,
              std::uint64_t epoch = 0);

  /// Drops `query` if present (invalidation on index insert/delete).
  void erase(const KeywordSet& query);

  /// Drops every entry whose key satisfies `pred` (bulk invalidation when
  /// the local index table changes). O(entries).
  template <typename Pred>
  void erase_if(Pred&& pred) {
    for (auto it = fifo_.begin(); it != fifo_.end();) {
      if (pred(*it)) {
        const auto mit = map_.find(*it);
        occupancy_ -= mit->second.value.records();
        map_.erase(mit);
        it = fifo_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void clear();

  /// Re-sizes the cache in place (popularity-proportional sizing re-targets
  /// capacities between rebalance rounds). Shrinking evicts oldest entries
  /// until occupancy fits; 0 clears and disables. Hit/miss counters are
  /// preserved across the change.
  void set_capacity(std::size_t capacity_records);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t occupancy() const noexcept { return occupancy_; }
  std::size_t entry_count() const noexcept { return map_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t stale_hits() const noexcept { return stale_; }

  /// TEST-ONLY. Re-enables the pre-fix staleness behavior (an oversized
  /// refresh leaves the old entry behind; epoch validation is skipped) so
  /// the torture harness can demonstrate that it detects the bug. Applies
  /// process-wide; never enable outside tests.
  static void set_debug_legacy_staleness(bool on) {
    debug_legacy_staleness_ = on;
  }
  static bool debug_legacy_staleness() { return debug_legacy_staleness_; }

 private:
  void evict_oldest();

  struct Slot {
    std::list<KeywordSet>::iterator fifo_pos;
    CachedTraversal value;
    std::uint64_t epoch = 0;  ///< index mutation epoch at insert time
  };

  static bool debug_legacy_staleness_;

  std::size_t capacity_;
  std::size_t occupancy_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t stale_ = 0;
  std::list<KeywordSet> fifo_;  // front = oldest
  std::unordered_map<KeywordSet, Slot, KeywordSetHash> map_;
};

}  // namespace hkws::index
