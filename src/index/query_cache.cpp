#include "index/query_cache.hpp"

namespace hkws::index {

bool QueryCache::debug_legacy_staleness_ = false;

QueryCache::QueryCache(std::size_t capacity_records)
    : capacity_(capacity_records) {}

const CachedTraversal* QueryCache::lookup(const KeywordSet& query,
                                          std::uint64_t epoch) {
  const auto it = map_.find(query);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  if (!debug_legacy_staleness_ && it->second.epoch < epoch) {
    // The entry predates an index mutation somewhere under this root, so
    // its contributor list may omit (or over-include) nodes. Drop it.
    ++stale_;
    ++misses_;
    occupancy_ -= it->second.value.records();
    fifo_.erase(it->second.fifo_pos);
    map_.erase(it);
    return nullptr;
  }
  ++hits_;
  return &it->second.value;
}

void QueryCache::insert(const KeywordSet& query, CachedTraversal summary,
                        std::uint64_t epoch) {
  if (capacity_ == 0) return;
  const std::size_t need = summary.records();
  // A summary that fills the whole cache would evict every other entry for
  // a single query's benefit, so it is rejected along with the truly
  // oversized ones. The exception is a capacity-1 cache, whose only useful
  // admission *is* the exact-fit one-record summary (replacing whatever
  // single entry it holds).
  if (need > capacity_ || (need == capacity_ && capacity_ > 1)) {
    // Can never fit (or would wipe the cache) — but the refresh supersedes
    // whatever we had cached for this query, so the old entry must go too:
    // serving it later would replay a summary we know is out of date.
    if (!debug_legacy_staleness_) erase(query);
    return;
  }

  if (const auto it = map_.find(query); it != map_.end()) {
    occupancy_ -= it->second.value.records();
    it->second.value = std::move(summary);
    it->second.epoch = epoch;
    occupancy_ += it->second.value.records();
    // A refresh counts as a new write: move it to the FIFO back so that
    // eviction remains strictly FIFO by last write.
    fifo_.splice(fifo_.end(), fifo_, it->second.fifo_pos);
  } else {
    fifo_.push_back(query);
    auto pos = std::prev(fifo_.end());
    occupancy_ += need;
    map_.emplace(query, Slot{pos, std::move(summary), epoch});
  }
  while (occupancy_ > capacity_) evict_oldest();
}

void QueryCache::set_capacity(std::size_t capacity_records) {
  capacity_ = capacity_records;
  if (capacity_ == 0) {
    clear();
    return;
  }
  while (occupancy_ > capacity_) evict_oldest();
}

void QueryCache::evict_oldest() {
  // FIFO by last write: the front is the least recently written entry, and
  // the entry just written sits at the back. The just-written entry can
  // only reach the front when a capacity shrink leaves it as the sole
  // survivor — insert() rejects summaries at or above capacity (capacity-1
  // exact fits aside), so admission alone never gets it there.
  const KeywordSet victim = fifo_.front();
  fifo_.pop_front();
  const auto it = map_.find(victim);
  occupancy_ -= it->second.value.records();
  map_.erase(it);
  ++evictions_;
}

void QueryCache::erase(const KeywordSet& query) {
  const auto it = map_.find(query);
  if (it == map_.end()) return;
  occupancy_ -= it->second.value.records();
  fifo_.erase(it->second.fifo_pos);
  map_.erase(it);
}

void QueryCache::clear() {
  fifo_.clear();
  map_.clear();
  occupancy_ = 0;
}

}  // namespace hkws::index
