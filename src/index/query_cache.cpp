#include "index/query_cache.hpp"

namespace hkws::index {

QueryCache::QueryCache(std::size_t capacity_records)
    : capacity_(capacity_records) {}

const CachedTraversal* QueryCache::lookup(const KeywordSet& query) {
  const auto it = map_.find(query);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second.value;
}

void QueryCache::insert(const KeywordSet& query, CachedTraversal summary) {
  if (capacity_ == 0) return;
  const std::size_t need = summary.records();
  if (need > capacity_) return;  // can never fit

  if (const auto it = map_.find(query); it != map_.end()) {
    occupancy_ -= it->second.value.records();
    it->second.value = std::move(summary);
    occupancy_ += it->second.value.records();
  } else {
    fifo_.push_back(query);
    auto pos = std::prev(fifo_.end());
    occupancy_ += need;
    map_.emplace(query, Slot{pos, std::move(summary)});
  }
  while (occupancy_ > capacity_) evict_oldest();
}

void QueryCache::evict_oldest() {
  // Never evict the entry just inserted (it is at the back); FIFO order
  // guarantees the front is the oldest.
  const KeywordSet victim = fifo_.front();
  fifo_.pop_front();
  const auto it = map_.find(victim);
  occupancy_ -= it->second.value.records();
  map_.erase(it);
  ++evictions_;
}

void QueryCache::erase(const KeywordSet& query) {
  const auto it = map_.find(query);
  if (it == map_.end()) return;
  occupancy_ -= it->second.value.records();
  fifo_.erase(it->second.fifo_pos);
  map_.erase(it);
}

void QueryCache::clear() {
  fifo_.clear();
  map_.clear();
  occupancy_ = 0;
}

}  // namespace hkws::index
