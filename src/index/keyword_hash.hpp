// The keyword-to-dimension hash h : W -> {0..r-1} and the keyword-set
// mapping F_h : 2^W -> V of paper §3.3. F_h(K) is the hypercube node whose
// '1' bits are exactly the dimensions hit by the keywords of K; the node
// is "responsible" for K, and an object with keyword set K_sigma is indexed
// at F_h(K_sigma).
#pragma once

#include <cstdint>

#include "common/hash.hpp"
#include "common/keyword.hpp"
#include "cube/hypercube.hpp"

namespace hkws::index {

class KeywordHasher {
 public:
  /// @param r     hypercube dimension (range of h)
  /// @param seed  hash salt; fixed per deployment so every peer agrees
  explicit KeywordHasher(int r, std::uint64_t seed = seeds::kKeywordHash);

  int dimension() const noexcept { return r_; }

  /// h(w): the dimension this keyword sets.
  int dim_of(const Keyword& w) const noexcept {
    return static_cast<int>(hash_bytes(w, seed_) %
                            static_cast<std::uint64_t>(r_));
  }

  /// F_h(K): OR of 2^h(w) over all w in K. F_h(∅) = 0 (the all-zero node).
  cube::CubeId responsible_node(const KeywordSet& keywords) const;

  /// Monotonicity helper: F_h(K1) is contained in F_h(K2) whenever
  /// K1 ⊆ K2 (Lemma 3.3's premise); exposed for tests/diagnostics.
  bool maps_into_subcube(const KeywordSet& query,
                         const KeywordSet& object_keywords) const {
    return cube::Hypercube::contains(responsible_node(object_keywords),
                                     responsible_node(query));
  }

 private:
  int r_;
  std::uint64_t seed_;
};

}  // namespace hkws::index
