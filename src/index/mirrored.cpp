#include "index/mirrored.hpp"

#include <memory>
#include <set>

#include "obs/windowed.hpp"

namespace hkws::index {

OverlayIndex::Config MirroredIndex::mirror_config(OverlayIndex::Config cfg) {
  cfg.hash_seed = mix64(cfg.hash_seed ^ 0x5ec0dc0beULL);
  cfg.ring_salt = mix64(cfg.ring_salt ^ 0x5ec0dc0beULL);
  // Hot-cell replication is a primary-cube concern: mirror traffic exists
  // to cover primary failures, and replicating it too would double the
  // replica footprint for cells that are only hot on one salt anyway.
  cfg.hot.enabled = false;
  return cfg;
}

MirroredIndex::MirroredIndex(dht::Dolr& dolr, OverlayIndex::Config cfg)
    : primary_(std::make_unique<OverlayIndex>(dolr, cfg)),
      mirror_(std::make_unique<OverlayIndex>(dolr, mirror_config(cfg))) {}

void MirroredIndex::publish(sim::EndpointId publisher, ObjectId object,
                            const KeywordSet& keywords,
                            OverlayIndex::PublishCallback done) {
  primary_->publish(
      publisher, object, keywords,
      [this, publisher, object, keywords, done = std::move(done)](
          const OverlayIndex::PublishResult& r) {
        // First copy: the mirror entry rides one extra routed message.
        if (r.indexed) mirror_->reindex(publisher, object, keywords);
        if (done) done(r);
      });
}

void MirroredIndex::withdraw(sim::EndpointId publisher, ObjectId object,
                             const KeywordSet& keywords,
                             OverlayIndex::WithdrawCallback done) {
  primary_->withdraw(
      publisher, object, keywords,
      [this, publisher, object, keywords, done = std::move(done)](
          const OverlayIndex::WithdrawResult& r) {
        if (r.index_removed) mirror_->deindex(publisher, object, keywords);
        if (done) done(r);
      });
}

SearchResult MirroredIndex::merge(const SearchResult& a,
                                  const SearchResult& b) {
  SearchResult merged;
  std::set<ObjectId> seen;
  for (const auto* part : {&a, &b}) {
    for (const Hit& h : part->hits)
      if (seen.insert(h.object).second) merged.hits.push_back(h);
  }
  merged.stats.nodes_contacted =
      a.stats.nodes_contacted + b.stats.nodes_contacted;
  merged.stats.messages = a.stats.messages + b.stats.messages;
  merged.stats.rounds = a.stats.rounds + b.stats.rounds;
  merged.stats.levels = a.stats.levels + b.stats.levels;
  merged.stats.cache_hit = a.stats.cache_hit && b.stats.cache_hit;
  merged.stats.complete = a.stats.complete || b.stats.complete;
  merged.stats.retransmits = a.stats.retransmits + b.stats.retransmits;
  merged.stats.coalesced_batches =
      a.stats.coalesced_batches + b.stats.coalesced_batches;
  merged.stats.coalesced_visits =
      a.stats.coalesced_visits + b.stats.coalesced_visits;
  merged.stats.failovers = a.stats.failovers + b.stats.failovers;
  merged.stats.degraded = a.stats.degraded || b.stats.degraded;
  // Either cube answering in full serves the query; failed only when both
  // traversals gave up (the whole point of mirroring, §3.4).
  merged.stats.failed = a.stats.failed && b.stats.failed;
  if (a.stats.failed != b.stats.failed) {
    // Exactly one cube gave up: the other served the query alone. That is
    // the primary-miss -> mirror-hit failover (or its converse) — the
    // availability event degraded-mode observability is about.
    ++merged.stats.failovers;
    merged.stats.degraded = true;
    ++failovers_;
    net::Transport& net = primary_->dolr().overlay().transport();
    net.metrics().count("kws.mirror_failover");
    if (windows_ != nullptr)
      windows_->count(net.now(), "mirror.failover");
  }
  return merged;
}

std::uint64_t MirroredIndex::superset_search(
    sim::EndpointId searcher, const KeywordSet& query, std::size_t threshold,
    SearchStrategy strategy, OverlayIndex::SearchCallback done) {
  // Fan out to both cubes; merge when both have answered.
  struct Pending {
    SearchResult first;
    bool have_first = false;
    OverlayIndex::SearchCallback done;
  };
  const std::uint64_t ticket = next_ticket_++;
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  auto on_result = [this, pending, threshold, ticket](const SearchResult& r) {
    if (!pending->have_first) {
      pending->first = r;
      pending->have_first = true;
      return;
    }
    active_.erase(ticket);
    SearchResult merged = merge(pending->first, r);
    // min(t, |O_K|) semantics survive the union.
    if (threshold != 0 && merged.hits.size() > threshold)
      merged.hits.resize(threshold);
    pending->done(merged);
  };
  const std::uint64_t a =
      primary_->superset_search(searcher, query, threshold, strategy,
                                on_result);
  const std::uint64_t b =
      mirror_->superset_search(searcher, query, threshold, strategy,
                               on_result);
  active_.emplace(ticket, std::make_pair(a, b));
  return ticket;
}

bool MirroredIndex::cancel(std::uint64_t ticket) {
  const auto it = active_.find(ticket);
  if (it == active_.end()) return false;
  const auto [a, b] = it->second;
  active_.erase(it);
  // Either traversal may have finished on its own already; cancelling the
  // other is what guarantees the merged callback can no longer fire.
  primary_->cancel(a);
  mirror_->cancel(b);
  return true;
}

void MirroredIndex::pin_search(sim::EndpointId searcher,
                               const KeywordSet& keywords,
                               OverlayIndex::SearchCallback done) {
  struct Pending {
    SearchResult first;
    bool have_first = false;
    OverlayIndex::SearchCallback done;
  };
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  auto on_result = [this, pending](const SearchResult& r) {
    if (!pending->have_first) {
      pending->first = r;
      pending->have_first = true;
      return;
    }
    pending->done(merge(pending->first, r));
  };
  primary_->pin_search(searcher, keywords, on_result);
  mirror_->pin_search(searcher, keywords, on_result);
}

std::uint64_t MirroredIndex::repair_placement() {
  return primary_->repair_placement() + mirror_->repair_placement();
}

std::uint64_t MirroredIndex::repair_placement(std::size_t max_entries) {
  const std::uint64_t a = primary_->repair_placement(max_entries);
  const std::uint64_t b = mirror_->repair_placement(
      max_entries > a ? max_entries - static_cast<std::size_t>(a) : 0);
  return a + b;
}

std::size_t MirroredIndex::misplaced_entries() const {
  return primary_->misplaced_entries() + mirror_->misplaced_entries();
}

void MirroredIndex::purge_dead() {
  primary_->purge_dead();
  mirror_->purge_dead();
}

std::size_t MirroredIndex::missing_entries(const OverlayIndex& src,
                                           const OverlayIndex& dst) {
  const dht::Overlay& overlay = src.dolr().overlay();
  std::size_t missing = 0;
  src.for_each_entry([&](cube::CubeId, const KeywordSet& k, ObjectId o,
                         sim::EndpointId holder) {
    // Entries still held for a dead peer are about to be purged; only a
    // live copy can seed the other cube.
    if (!overlay.is_live(holder)) return;
    if (!dst.has_entry(k, o)) ++missing;
  });
  return missing;
}

std::uint64_t MirroredIndex::resync(std::size_t max_entries) {
  struct Seed {
    sim::EndpointId holder;
    ObjectId object;
    KeywordSet keywords;
    bool into_mirror;
  };
  std::vector<Seed> seeds;
  const auto collect = [&](const OverlayIndex& src, const OverlayIndex& dst,
                           bool into_mirror) {
    const dht::Overlay& overlay = src.dolr().overlay();
    src.for_each_entry([&](cube::CubeId, const KeywordSet& k, ObjectId o,
                           sim::EndpointId holder) {
      if (seeds.size() >= max_entries) return;
      if (!overlay.is_live(holder)) return;
      if (dst.has_entry(k, o)) return;
      seeds.push_back(Seed{holder, o, k, into_mirror});
    });
  };
  collect(*primary_, *mirror_, true);
  collect(*mirror_, *primary_, false);
  for (const Seed& s : seeds) {
    // Anti-entropy from the survivor: the peer still holding the entry
    // routes a reindex into the cube that lost it.
    OverlayIndex& dst = s.into_mirror ? *mirror_ : *primary_;
    dst.reindex(s.holder, s.object, s.keywords);
  }
  if (!seeds.empty())
    primary_->dolr().overlay().transport().metrics().count("kws.resync",
                                                     seeds.size());
  return seeds.size();
}

std::size_t MirroredIndex::resync_backlog() const {
  return missing_entries(*primary_, *mirror_) +
         missing_entries(*mirror_, *primary_);
}

}  // namespace hkws::index
