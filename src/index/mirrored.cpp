#include "index/mirrored.hpp"

#include <memory>
#include <set>

namespace hkws::index {

OverlayIndex::Config MirroredIndex::mirror_config(OverlayIndex::Config cfg) {
  cfg.hash_seed = mix64(cfg.hash_seed ^ 0x5ec0dc0beULL);
  cfg.ring_salt = mix64(cfg.ring_salt ^ 0x5ec0dc0beULL);
  return cfg;
}

MirroredIndex::MirroredIndex(dht::Dolr& dolr, OverlayIndex::Config cfg)
    : primary_(std::make_unique<OverlayIndex>(dolr, cfg)),
      mirror_(std::make_unique<OverlayIndex>(dolr, mirror_config(cfg))) {}

void MirroredIndex::publish(sim::EndpointId publisher, ObjectId object,
                            const KeywordSet& keywords,
                            OverlayIndex::PublishCallback done) {
  primary_->publish(
      publisher, object, keywords,
      [this, publisher, object, keywords, done = std::move(done)](
          const OverlayIndex::PublishResult& r) {
        // First copy: the mirror entry rides one extra routed message.
        if (r.indexed) mirror_->reindex(publisher, object, keywords);
        if (done) done(r);
      });
}

void MirroredIndex::withdraw(sim::EndpointId publisher, ObjectId object,
                             const KeywordSet& keywords,
                             OverlayIndex::WithdrawCallback done) {
  primary_->withdraw(
      publisher, object, keywords,
      [this, publisher, object, keywords, done = std::move(done)](
          const OverlayIndex::WithdrawResult& r) {
        if (r.index_removed) mirror_->deindex(publisher, object, keywords);
        if (done) done(r);
      });
}

SearchResult MirroredIndex::merge(const SearchResult& a,
                                  const SearchResult& b) {
  SearchResult merged;
  std::set<ObjectId> seen;
  for (const auto* part : {&a, &b}) {
    for (const Hit& h : part->hits)
      if (seen.insert(h.object).second) merged.hits.push_back(h);
  }
  merged.stats.nodes_contacted =
      a.stats.nodes_contacted + b.stats.nodes_contacted;
  merged.stats.messages = a.stats.messages + b.stats.messages;
  merged.stats.rounds = a.stats.rounds + b.stats.rounds;
  merged.stats.levels = a.stats.levels + b.stats.levels;
  merged.stats.cache_hit = a.stats.cache_hit && b.stats.cache_hit;
  merged.stats.complete = a.stats.complete || b.stats.complete;
  merged.stats.retransmits = a.stats.retransmits + b.stats.retransmits;
  // Either cube answering in full serves the query; failed only when both
  // traversals gave up (the whole point of mirroring, §3.4).
  merged.stats.failed = a.stats.failed && b.stats.failed;
  return merged;
}

std::uint64_t MirroredIndex::superset_search(
    sim::EndpointId searcher, const KeywordSet& query, std::size_t threshold,
    SearchStrategy strategy, OverlayIndex::SearchCallback done) {
  // Fan out to both cubes; merge when both have answered.
  struct Pending {
    SearchResult first;
    bool have_first = false;
    OverlayIndex::SearchCallback done;
  };
  const std::uint64_t ticket = next_ticket_++;
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  auto on_result = [this, pending, threshold, ticket](const SearchResult& r) {
    if (!pending->have_first) {
      pending->first = r;
      pending->have_first = true;
      return;
    }
    active_.erase(ticket);
    SearchResult merged = merge(pending->first, r);
    // min(t, |O_K|) semantics survive the union.
    if (threshold != 0 && merged.hits.size() > threshold)
      merged.hits.resize(threshold);
    pending->done(merged);
  };
  const std::uint64_t a =
      primary_->superset_search(searcher, query, threshold, strategy,
                                on_result);
  const std::uint64_t b =
      mirror_->superset_search(searcher, query, threshold, strategy,
                               on_result);
  active_.emplace(ticket, std::make_pair(a, b));
  return ticket;
}

bool MirroredIndex::cancel(std::uint64_t ticket) {
  const auto it = active_.find(ticket);
  if (it == active_.end()) return false;
  const auto [a, b] = it->second;
  active_.erase(it);
  // Either traversal may have finished on its own already; cancelling the
  // other is what guarantees the merged callback can no longer fire.
  primary_->cancel(a);
  mirror_->cancel(b);
  return true;
}

void MirroredIndex::pin_search(sim::EndpointId searcher,
                               const KeywordSet& keywords,
                               OverlayIndex::SearchCallback done) {
  struct Pending {
    SearchResult first;
    bool have_first = false;
    OverlayIndex::SearchCallback done;
  };
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  auto on_result = [pending](const SearchResult& r) {
    if (!pending->have_first) {
      pending->first = r;
      pending->have_first = true;
      return;
    }
    pending->done(merge(pending->first, r));
  };
  primary_->pin_search(searcher, keywords, on_result);
  mirror_->pin_search(searcher, keywords, on_result);
}

std::uint64_t MirroredIndex::repair_placement() {
  return primary_->repair_placement() + mirror_->repair_placement();
}

void MirroredIndex::purge_dead() {
  primary_->purge_dead();
  mirror_->purge_dead();
}

}  // namespace hkws::index
