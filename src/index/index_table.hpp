// The per-node index table Tbl_u of paper §3.3: entries <keyword_set,
// object_id>, with same-set entries combined into <K, {sigma_1..sigma_n}>.
// A node u holds entries only for keyword sets K with F_h(K) = u (the set
// R_u); the table itself doesn't enforce that — placement is the business
// of the index services that own tables.
//
// Superset lookups are signature-indexed: each entry carries a 64-bit
// Bloom-style keyword signature, and a per-keyword posting list maps every
// keyword to the entries containing it. A query scans only the smallest
// posting list among its keywords and rejects non-supersets with one
// `(sig_q & ~sig_k)` test before falling back to the exact subset check.
// The keyword→posting map is a flat hash table (postings are never iterated
// across keywords), and each posting carries the entry's signature inline
// so the hot rejection loop touches no other table. Posting lists are
// ordered by keyword-set value, so iteration order is identical to a full
// scan of the underlying std::map — callers (result batching, cumulative
// sessions, the torture oracle) rely on that order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/keyword.hpp"

namespace hkws::index {

/// One match produced by a table lookup: an object and the full keyword
/// set it is indexed under (needed for ranking by extra keywords).
struct Hit {
  ObjectId object = kInvalidObject;
  KeywordSet keywords;

  bool operator==(const Hit&) const = default;
};

class IndexTable {
 public:
  /// Cumulative work counters for superset scans, for measuring what the
  /// signature index saves against the linear baseline (`linear_equivalent`
  /// accumulates entry_count() per scan — the entries a full scan would
  /// have touched). Mutable bookkeeping; lookups stay logically const.
  struct ScanStats {
    std::uint64_t scans = 0;              ///< for_each_superset calls
    std::uint64_t candidates = 0;         ///< posting-list entries examined
    std::uint64_t signature_rejects = 0;  ///< cut by (sig_q & ~sig_k) != 0
    std::uint64_t subset_checks = 0;      ///< exact subset_of evaluations
    std::uint64_t matches = 0;            ///< entries delivered to callers
    std::uint64_t linear_equivalent = 0;  ///< entries a linear scan would touch
  };

  /// Adds <keywords, object>. Returns false if it was already present.
  bool add(const KeywordSet& keywords, ObjectId object);

  /// Removes <keywords, object>. Returns false if absent.
  bool remove(const KeywordSet& keywords, ObjectId object);

  /// Objects indexed under exactly `keywords` (pin-search payload).
  std::vector<ObjectId> exact(const KeywordSet& keywords) const;

  /// Invokes fn(K', objects) for every entry whose keyword set contains
  /// `query` (K' ⊇ query), in keyword-set order; stops early if fn returns
  /// false. This is the per-node scan of the superset-search protocol.
  void for_each_superset(
      const KeywordSet& query,
      const std::function<bool(const KeywordSet&, const std::set<ObjectId>&)>&
          fn) const;

  /// The pre-signature linear scan over every entry. Kept as the reference
  /// implementation: differential tests pin for_each_superset to it, and
  /// bench/search_perf uses it as the scan-work baseline. Same contract
  /// and iteration order as for_each_superset.
  void for_each_superset_linear(
      const KeywordSet& query,
      const std::function<bool(const KeywordSet&, const std::set<ObjectId>&)>&
          fn) const;

  /// Flattened superset matches, at most `limit` objects (no limit if 0).
  /// If `truncated` is non-null, it is set to true iff at least one
  /// matching object was cut off by `limit` — including the silent case
  /// where the cut lands mid-way through one entry's object set.
  std::vector<Hit> supersets(const KeywordSet& query, std::size_t limit = 0,
                             bool* truncated = nullptr) const;

  /// Append-into variant of supersets(): fills `out` (cleared first)
  /// instead of allocating a fresh vector, so per-query scan buffers can be
  /// pooled by the caller. Same contract otherwise.
  void supersets_into(const KeywordSet& query, std::size_t limit,
                      bool* truncated, std::vector<Hit>& out) const;

  /// Number of distinct <K, object> pairs (the paper's "index size" unit).
  std::size_t object_count() const noexcept { return objects_; }

  /// Number of combined entries <K, {objects}>.
  std::size_t entry_count() const noexcept { return entries_.size(); }

  bool empty() const noexcept { return entries_.empty(); }

  const std::map<KeywordSet, std::set<ObjectId>>& entries() const noexcept {
    return entries_;
  }

  const ScanStats& scan_stats() const noexcept { return scan_; }
  void reset_scan_stats() const noexcept { scan_ = {}; }

 private:
  using EntryMap = std::map<KeywordSet, std::set<ObjectId>>;

  /// One posting: an iterator into entries_ (stable in std::map) plus the
  /// entry's keyword signature, duplicated here so the scan loop reads it
  /// inline instead of chasing a side table per candidate.
  struct Posting {
    EntryMap::const_iterator it;
    std::uint64_t sig = 0;
  };

  /// Postings are ordered by the entry's keyword set so posting-list
  /// iteration matches full-map iteration order. The signature is payload,
  /// not key: lookups may pass a dummy.
  struct ByKeywordSet {
    bool operator()(const Posting& a, const Posting& b) const {
      return a.it->first < b.it->first;
    }
  };
  using PostingList = std::set<Posting, ByKeywordSet>;

  EntryMap entries_;
  std::unordered_map<Keyword, PostingList> postings_;
  std::size_t objects_ = 0;
  mutable ScanStats scan_;
};

}  // namespace hkws::index
