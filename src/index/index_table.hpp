// The per-node index table Tbl_u of paper §3.3: entries <keyword_set,
// object_id>, with same-set entries combined into <K, {sigma_1..sigma_n}>.
// A node u holds entries only for keyword sets K with F_h(K) = u (the set
// R_u); the table itself doesn't enforce that — placement is the business
// of the index services that own tables.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/keyword.hpp"

namespace hkws::index {

/// One match produced by a table lookup: an object and the full keyword
/// set it is indexed under (needed for ranking by extra keywords).
struct Hit {
  ObjectId object = kInvalidObject;
  KeywordSet keywords;

  bool operator==(const Hit&) const = default;
};

class IndexTable {
 public:
  /// Adds <keywords, object>. Returns false if it was already present.
  bool add(const KeywordSet& keywords, ObjectId object);

  /// Removes <keywords, object>. Returns false if absent.
  bool remove(const KeywordSet& keywords, ObjectId object);

  /// Objects indexed under exactly `keywords` (pin-search payload).
  std::vector<ObjectId> exact(const KeywordSet& keywords) const;

  /// Invokes fn(K', objects) for every entry whose keyword set contains
  /// `query` (K' ⊇ query), in keyword-set order; stops early if fn returns
  /// false. This is the per-node scan of the superset-search protocol.
  void for_each_superset(
      const KeywordSet& query,
      const std::function<bool(const KeywordSet&, const std::set<ObjectId>&)>&
          fn) const;

  /// Flattened superset matches, at most `limit` objects (no limit if 0).
  std::vector<Hit> supersets(const KeywordSet& query,
                             std::size_t limit = 0) const;

  /// Number of distinct <K, object> pairs (the paper's "index size" unit).
  std::size_t object_count() const noexcept { return objects_; }

  /// Number of combined entries <K, {objects}>.
  std::size_t entry_count() const noexcept { return entries_.size(); }

  bool empty() const noexcept { return entries_.empty(); }

  const std::map<KeywordSet, std::set<ObjectId>>& entries() const noexcept {
    return entries_;
  }

 private:
  std::map<KeywordSet, std::set<ObjectId>> entries_;
  std::size_t objects_ = 0;
};

}  // namespace hkws::index
