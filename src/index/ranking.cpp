#include "index/ranking.hpp"

#include <algorithm>
#include <cmath>

namespace hkws::index {

namespace {

// Extra-keyword count |K_hit| - |query|, clamped at zero. A well-formed
// hit always has K_hit ⊇ query, but a malformed one (buggy backend,
// fault-injected duplicate) can arrive with fewer keywords — the unsigned
// subtraction would wrap to a huge count and corrupt the ranking, so such
// hits are grouped with the exact matches instead.
std::size_t extra_count(const Hit& h, const KeywordSet& query) noexcept {
  return h.keywords.size() >= query.size() ? h.keywords.size() - query.size()
                                           : 0;
}

}  // namespace

std::map<std::size_t, std::vector<Hit>> group_by_extra(
    const std::vector<Hit>& hits, const KeywordSet& query) {
  std::map<std::size_t, std::vector<Hit>> groups;
  for (const Hit& h : hits) groups[extra_count(h, query)].push_back(h);
  return groups;
}

void order_hits(std::vector<Hit>& hits, const KeywordSet& query,
                RankingPreference pref) {
  const auto extra = [&](const Hit& h) { return extra_count(h, query); };
  std::stable_sort(hits.begin(), hits.end(), [&](const Hit& a, const Hit& b) {
    return pref == RankingPreference::kGeneralFirst ? extra(a) < extra(b)
                                                    : extra(a) > extra(b);
  });
}

std::vector<RefinementSample> sample_refinements(
    const std::vector<Hit>& hits, const KeywordSet& query,
    std::size_t per_category, std::size_t max_categories) {
  // Bucket by the distinct extra keyword set; map keys give deterministic
  // smallest-first order (size, then lexicographic).
  std::map<std::size_t, std::map<KeywordSet, RefinementSample>> by_size;
  for (const Hit& h : hits) {
    const KeywordSet extra = h.keywords.difference(query);
    if (extra.empty()) continue;  // exact matches suggest no refinement
    auto& sample = by_size[extra.size()]
                       .try_emplace(extra, RefinementSample{extra, {}, 0})
                       .first->second;
    ++sample.category_size;
    if (sample.samples.size() < per_category)
      sample.samples.push_back(h.object);
  }
  std::vector<RefinementSample> out;
  for (auto& [size, categories] : by_size) {
    for (auto& [extra, sample] : categories) {
      if (max_categories != 0 && out.size() >= max_categories) return out;
      out.push_back(std::move(sample));
    }
  }
  return out;
}

std::optional<KeywordSet> expand_query(const std::vector<Hit>& hits,
                                       const KeywordSet& query,
                                       double min_share) {
  if (hits.empty()) return std::nullopt;
  // Count how many hits each extra keyword appears in.
  std::map<Keyword, std::size_t> coverage;
  for (const Hit& h : hits)
    for (const Keyword& w : h.keywords.difference(query)) ++coverage[w];
  // The best expansion keyword splits the set closest to the middle: it
  // keeps a substantial subset while maximally narrowing the search. Only
  // keywords meeting min_share are eligible — filtering *before* picking
  // the gap, so a rare keyword near the half mark can't shadow a viable
  // dominant one.
  const double half = static_cast<double>(hits.size()) / 2.0;
  const double floor = min_share * static_cast<double>(hits.size());
  const Keyword* best = nullptr;
  double best_gap = 0;
  for (const auto& [w, count] : coverage) {
    if (static_cast<double>(count) < floor) continue;
    const double gap = std::abs(static_cast<double>(count) - half);
    if (best == nullptr || gap < best_gap) {
      best = &w;
      best_gap = gap;
    }
  }
  if (best == nullptr) return std::nullopt;
  return query.union_with(KeywordSet({*best}));
}

}  // namespace hkws::index
