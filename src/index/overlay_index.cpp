#include "index/overlay_index.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

namespace hkws::index {

namespace {
constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();
constexpr std::size_t kHitBytes = 48;   // rough wire size of one result hit
constexpr std::size_t kCtrlBytes = 64;  // rough wire size of a control msg

std::uint64_t total_count(const CachedTraversal& c) {
  std::uint64_t total = 0;
  for (const auto& [node, count] : c.contributors) total += count;
  return total;
}
}  // namespace

OverlayIndex::OverlayIndex(dht::Dolr& dolr, Config cfg)
    : dolr_(dolr),
      overlay_(dolr.overlay()),
      net_(dolr.overlay().transport()),
      cfg_(cfg),
      cube_(cfg.r),
      hasher_(cfg.r, cfg.hash_seed),
      backoff_rng_(cfg.backoff_seed) {
  // loads_by_cube_node() materializes a 2^r vector; protocols themselves
  // would work for larger r, but nothing in the paper's regime needs it.
  if (cfg.r > 24)
    throw std::invalid_argument("OverlayIndex: r must be <= 24");
}

sim::Time OverlayIndex::resend_delay(int attempt) {
  if (cfg_.backoff_cap == 0 || attempt <= 1) return cfg_.step_timeout;
  sim::Time d = cfg_.step_timeout;
  for (int i = 1; i < attempt && d < cfg_.backoff_cap; ++i) d *= 2;
  d = std::min(d, cfg_.backoff_cap);
  if (cfg_.backoff_jitter != 0)
    d += static_cast<sim::Time>(backoff_rng_.next_below(
        static_cast<std::uint64_t>(cfg_.backoff_jitter) + 1));
  return d;
}

dht::RingId OverlayIndex::ring_key_of(cube::CubeId u) const {
  // g: logical hypercube node -> ring key, independent of the other hashes.
  return overlay_.space().clamp(mix64(u ^ cfg_.ring_salt));
}

sim::EndpointId OverlayIndex::peer_of(cube::CubeId u) const {
  return overlay_.endpoint_of(overlay_.owner_of(ring_key_of(u)));
}

std::size_t OverlayIndex::room(const Request& req) const {
  if (req.threshold == 0) return kUnlimited;
  return req.threshold > req.collected ? req.threshold - req.collected : 0;
}

OverlayIndex::Request* OverlayIndex::find(std::uint64_t req_id) {
  const auto it = requests_.find(req_id);
  return it == requests_.end() ? nullptr : it->second.get();
}

// --- Object maintenance -----------------------------------------------------

void OverlayIndex::publish(sim::EndpointId publisher, ObjectId object,
                           const KeywordSet& keywords, PublishCallback done) {
  if (keywords.empty())
    throw std::invalid_argument("OverlayIndex::publish: empty keyword set");
  dolr_.insert(
      publisher, object,
      [this, object, keywords, done = std::move(done)](
          const dht::Dolr::InsertResult& r) {
        if (!r.first_copy) {
          if (done) done(PublishResult{false, r.hops, 0});
          return;
        }
        // First copy: create the keyword index entry at g(F_h(K)).
        const cube::CubeId u = hasher_.responsible_node(keywords);
        const sim::EndpointId from = overlay_.endpoint_of(r.owner);
        overlay_.route(
            from, ring_key_of(u), "kws.insert",
            kCtrlBytes + keywords.size() * 12,
            [this, u, object, keywords, done, dolr_hops = r.hops](
                const dht::Overlay::RouteResult& rr) {
              PeerState& ps = peer_state(overlay_.endpoint_of(rr.owner));
              if (ps.tables[u].add(keywords, object)) ++mutation_epoch_;
              replica_add(u, keywords, object);
              if (const auto cit = ps.caches.find(u); cit != ps.caches.end()) {
                cit->second.erase_if([&](const KeywordSet& q) {
                  return q.subset_of(keywords);
                });
              }
              if (done) done(PublishResult{true, dolr_hops, rr.hops});
            });
      });
}

void OverlayIndex::withdraw(sim::EndpointId publisher, ObjectId object,
                            const KeywordSet& keywords,
                            WithdrawCallback done) {
  dolr_.remove(
      publisher, object,
      [this, object, keywords, done = std::move(done)](
          const dht::Dolr::DeleteResult& r) {
        if (!r.last_copy) {
          if (done) done(WithdrawResult{false});
          return;
        }
        const cube::CubeId u = hasher_.responsible_node(keywords);
        const sim::EndpointId from = overlay_.endpoint_of(r.owner);
        overlay_.route(
            from, ring_key_of(u), "kws.delete", kCtrlBytes,
            [this, u, object, keywords, done](
                const dht::Overlay::RouteResult& rr) {
              PeerState& ps = peer_state(overlay_.endpoint_of(rr.owner));
              if (const auto it = ps.tables.find(u); it != ps.tables.end()) {
                if (it->second.remove(keywords, object)) ++mutation_epoch_;
                if (it->second.empty()) ps.tables.erase(it);
              }
              replica_remove(u, keywords, object);
              if (const auto cit = ps.caches.find(u); cit != ps.caches.end()) {
                cit->second.erase_if([&](const KeywordSet& q) {
                  return q.subset_of(keywords);
                });
              }
              if (done) done(WithdrawResult{true});
            });
      });
}

void OverlayIndex::reindex(sim::EndpointId from, ObjectId object,
                           const KeywordSet& keywords) {
  if (keywords.empty())
    throw std::invalid_argument("OverlayIndex::reindex: empty keyword set");
  const cube::CubeId u = hasher_.responsible_node(keywords);
  overlay_.route(from, ring_key_of(u), "kws.insert",
                 kCtrlBytes + keywords.size() * 12,
                 [this, u, object, keywords](
                     const dht::Overlay::RouteResult& rr) {
                   PeerState& ps = peer_state(overlay_.endpoint_of(rr.owner));
                   if (ps.tables[u].add(keywords, object)) ++mutation_epoch_;
                   replica_add(u, keywords, object);
                   if (const auto cit = ps.caches.find(u);
                       cit != ps.caches.end()) {
                     cit->second.erase_if([&](const KeywordSet& q) {
                       return q.subset_of(keywords);
                     });
                   }
                 });
}

void OverlayIndex::deindex(sim::EndpointId from, ObjectId object,
                           const KeywordSet& keywords) {
  const cube::CubeId u = hasher_.responsible_node(keywords);
  overlay_.route(from, ring_key_of(u), "kws.delete", kCtrlBytes,
                 [this, u, object, keywords](
                     const dht::Overlay::RouteResult& rr) {
                   PeerState& ps = peer_state(overlay_.endpoint_of(rr.owner));
                   if (const auto it = ps.tables.find(u);
                       it != ps.tables.end()) {
                     if (it->second.remove(keywords, object))
                       ++mutation_epoch_;
                     if (it->second.empty()) ps.tables.erase(it);
                   }
                   replica_remove(u, keywords, object);
                   if (const auto cit = ps.caches.find(u);
                       cit != ps.caches.end()) {
                     cit->second.erase_if([&](const KeywordSet& q) {
                       return q.subset_of(keywords);
                     });
                   }
                 });
}

// --- Pin search --------------------------------------------------------------

void OverlayIndex::pin_search(sim::EndpointId searcher,
                              const KeywordSet& keywords, SearchCallback done) {
  if (cfg_.step_timeout != 0 && cfg_.failover_after != 0) {
    // Loss-guarded pin: route + reply under one retransmission timer, so a
    // pin aimed at a peer that dies mid-query retries (and the re-route
    // lands on the surrogate owner) instead of hanging forever.
    const std::uint64_t id = next_pin_++;
    auto pin = std::make_unique<PinState>();
    pin->keywords = keywords;
    pin->searcher = searcher;
    pin->done = std::move(done);
    pins_[id] = std::move(pin);
    pin_attempt(id);
    return;
  }
  const cube::CubeId u = hasher_.responsible_node(keywords);
  overlay_.route(
      searcher, ring_key_of(u), "kws.pin", kCtrlBytes + keywords.size() * 12,
      [this, u, keywords, searcher, done = std::move(done)](
          const dht::Overlay::RouteResult& rr) {
        const sim::EndpointId ep = overlay_.endpoint_of(rr.owner);
        PeerState& ps = peer_state(ep);
        std::vector<Hit> hits;
        if (const auto it = ps.tables.find(u); it != ps.tables.end()) {
          for (ObjectId o : it->second.exact(keywords))
            hits.push_back(Hit{o, keywords});
        }
        SearchResult result;
        result.hits = std::move(hits);
        result.stats.nodes_contacted = 1;
        result.stats.messages = static_cast<std::size_t>(rr.hops) + 1;
        result.stats.rounds = 1;
        result.stats.complete = true;
        net_.send(ep, searcher, "kws.pin_reply",
                  result.hits.size() * kHitBytes,
                  [done, result = std::move(result)] { done(result); });
      });
}

OverlayIndex::PinState* OverlayIndex::find_pin(std::uint64_t pin_id) {
  const auto it = pins_.find(pin_id);
  return it == pins_.end() ? nullptr : it->second.get();
}

void OverlayIndex::pin_attempt(std::uint64_t pin_id) {
  PinState* pin = find_pin(pin_id);
  if (!pin) return;
  ++pin->attempts;
  const cube::CubeId u = hasher_.responsible_node(pin->keywords);
  overlay_.route(
      pin->searcher, ring_key_of(u), "kws.pin",
      kCtrlBytes + pin->keywords.size() * 12,
      [this, pin_id, u](const dht::Overlay::RouteResult& rr) {
        PinState* p = find_pin(pin_id);
        if (!p) return;  // already answered by an earlier attempt
        p->stats.messages += static_cast<std::size_t>(rr.hops);
        const sim::EndpointId ep = overlay_.endpoint_of(rr.owner);
        PeerState& ps = peer_state(ep);
        std::vector<Hit> hits;
        if (const auto it = ps.tables.find(u); it != ps.tables.end()) {
          for (ObjectId o : it->second.exact(p->keywords))
            hits.push_back(Hit{o, p->keywords});
        }
        net_.send(ep, p->searcher, "kws.pin_reply", hits.size() * kHitBytes,
                  [this, pin_id, hits = std::move(hits)] {
                    PinState* p2 = find_pin(pin_id);
                    if (!p2) return;  // duplicate reply of a retried attempt
                    if (p2->timer != 0) net_.cancel_timer(p2->timer);
                    SearchResult result;
                    result.hits = hits;
                    result.stats = p2->stats;
                    ++result.stats.messages;  // the direct reply
                    result.stats.nodes_contacted = 1;
                    result.stats.rounds = 1;
                    result.stats.complete = true;
                    if (p2->attempts > 1) {
                      // A retry crossed a timeout: the serving peer may have
                      // changed under us, so the answer counts as degraded.
                      result.stats.degraded = true;
                      result.stats.failovers =
                          static_cast<std::size_t>(p2->attempts - 1);
                    }
                    SearchCallback cb = std::move(p2->done);
                    pins_.erase(pin_id);
                    cb(result);
                  });
      });
  PinState* p = find_pin(pin_id);
  if (!p) return;  // the route may complete in place
  p->timer = net_.set_timer(resend_delay(p->attempts), [this, pin_id] {
    PinState* p2 = find_pin(pin_id);
    if (!p2) return;
    p2->timer = 0;
    if (p2->attempts > cfg_.max_retries) {
      net_.metrics().count("kws.request_failed");
      SearchResult result;
      result.stats = p2->stats;
      result.stats.failed = true;
      SearchCallback cb = std::move(p2->done);
      pins_.erase(pin_id);
      cb(result);
      return;
    }
    ++p2->stats.retransmits;
    net_.metrics().count("kws.retransmit");
    pin_attempt(pin_id);
  });
}

// --- Superset search ----------------------------------------------------------

std::uint64_t OverlayIndex::superset_search(sim::EndpointId searcher,
                                            const KeywordSet& query,
                                            std::size_t threshold,
                                            SearchStrategy strategy,
                                            SearchCallback done) {
  if (query.empty())
    throw std::invalid_argument("OverlayIndex: empty query");
  const std::uint64_t id = next_request_++;
  auto req = std::make_unique<Request>();
  req->id = id;
  req->query = query;
  req->threshold = threshold;
  req->searcher = searcher;
  req->root_cube = hasher_.responsible_node(query);
  req->epoch = mutation_epoch_;
  req->strategy = strategy;
  req->done = std::move(done);
  requests_[id] = std::move(req);
  begin_root_route(id);
  return id;
}

void OverlayIndex::begin_root_route(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req) return;
  ++req->root_attempts;
  overlay_.route(
      req->searcher, ring_key_of(req->root_cube), "kws.t_query",
      kCtrlBytes + req->query.size() * 12,
      [this, req_id](const dht::Overlay::RouteResult& rr) {
        Request* r = find(req_id);
        // root_resolved dedups the callback of a route superseded by a
        // timeout-triggered re-route that happened to survive after all.
        if (!r || r->root_resolved) return;
        r->root_resolved = true;
        if (r->root_timer != 0) {
          net_.cancel_timer(r->root_timer);
          r->root_timer = 0;
        }
        r->root_peer = overlay_.endpoint_of(rr.owner);
        r->stats.messages += static_cast<std::size_t>(rr.hops);
        r->stats.nodes_contacted = 1;
        emit(req_id, "root", r->root_peer, static_cast<std::uint64_t>(rr.hops));
        // Hot root cell: hand the coordinator role to a replica holder so
        // root scans (one per query) spread across owner + replicas. One
        // extra forwarding hop; all subsequent protocol runs at the replica.
        // failover_root re-resolves to the true owner on repeated timeouts.
        if (const sim::EndpointId rep = pick_replica(r->root_cube); rep != 0) {
          const sim::EndpointId owner = r->root_peer;
          r->root_peer = rep;
          ++r->stats.messages;
          ++replica_spread_visits_;
          net_.metrics().count("kws.replica_spread");
          emit(req_id, "spread", r->root_cube, rep);
          net_.send(owner, rep, "kws.t_query", kCtrlBytes,
                    [this, req_id, owner] {
                      Request* r2 = find(req_id);
                      if (!r2) return;
                      // Demoted while the handoff was in flight: the replica
                      // can no longer scan the root cell — run the
                      // coordinator at the owner after all.
                      if (!can_serve(r2->root_peer, r2->root_cube))
                        r2->root_peer = owner;
                      start_top_down(*r2);
                    });
          return;
        }
        start_top_down(*r);
      });
  if (cfg_.step_timeout == 0) return;
  Request* r = find(req_id);  // re-find: the route may complete in place
  if (r == nullptr || r->root_resolved) return;
  r->root_timer = net_.set_timer(resend_delay(r->root_attempts),
                                 [this, req_id] {
    Request* r2 = find(req_id);
    if (!r2 || r2->root_resolved) return;
    r2->root_timer = 0;
    if (r2->root_attempts > cfg_.max_retries) {
      abort_request(req_id);
      return;
    }
    ++r2->stats.retransmits;
    net_.metrics().count("kws.retransmit");
    emit(req_id, "retransmit", r2->root_cube);
    begin_root_route(req_id);
  });
}

void OverlayIndex::failover_root(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req || req->failover_rerouting) return;
  req->failover_rerouting = true;
  // Re-resolve the root's owner through the DHT. Coordinator state lives in
  // this shared object keyed by request id, so "moving the coordinator" to
  // the surrogate owner is just re-aiming root_peer; in-flight step timers
  // then retransmit from (and reply to) the new peer.
  overlay_.route(
      req->searcher, ring_key_of(req->root_cube), "kws.t_query", kCtrlBytes,
      [this, req_id](const dht::Overlay::RouteResult& rr) {
        Request* r = find(req_id);
        if (!r) return;
        r->failover_rerouting = false;
        r->stats.messages += static_cast<std::size_t>(rr.hops);
        const sim::EndpointId surrogate = overlay_.endpoint_of(rr.owner);
        if (surrogate == r->root_peer) return;  // root is alive after all
        r->root_peer = surrogate;
        ++r->stats.failovers;
        r->stats.degraded = true;
        net_.metrics().count("kws.failover");
        emit(req_id, "failover", surrogate);
      });
}

bool OverlayIndex::cancel(std::uint64_t request) {
  Request* req = find(request);
  if (!req) return false;
  release_timers(*req);
  net_.metrics().count("kws.cancelled");
  if (req->root_resolved) {
    // Abandonment notice: a T_STOP tells the coordinator to stop exploring
    // the subtree. Coordinator state lives in this (shared) object, so
    // erasing the request is the stop itself; the message keeps the wire
    // cost model honest.
    net_.send(req->searcher, req->root_peer, "kws.t_stop", kCtrlBytes, [] {});
  }
  requests_.erase(request);
  return true;
}

void OverlayIndex::start_top_down(Request& req) {
  // The root examines its own index table first (paper step 0).
  req.visit_order.push_back(req.root_cube);
  const Visit& v0 = ensure_scan(req, req.root_cube, req.root_peer);
  const std::size_t c0 = v0.c1;
  req.collected += c0;
  if (c0 > 0)
    req.contributors.emplace_back(req.root_cube,
                                  static_cast<std::uint32_t>(c0));

  const cube::SpanningBinomialTree sbt(cube_, req.root_cube);
  const bool subtree_trivial = sbt.size() == 1;
  if (req.threshold != 0 && req.collected >= req.threshold) {
    req.stopped_early = !subtree_trivial;
    finish(req.id);
    return;
  }

  // Try the root's query cache: a cached traversal summary lets us contact
  // only the nodes known to contribute.
  if (cfg_.cache_capacity != 0) {
    PeerState& ps = peer_state(req.root_peer);
    if (const auto cit = ps.caches.find(req.root_cube);
        cit != ps.caches.end()) {
      if (const CachedTraversal* cached =
              cit->second.lookup(req.query, mutation_epoch_)) {
        if (cached->complete ||
            (req.threshold != 0 && total_count(*cached) >= req.threshold)) {
          req.mode = Mode::kPlan;
          req.stats.cache_hit = true;
          req.record_in_cache = false;
          req.plan_complete_means_complete = cached->complete;
          for (const auto& [node, count] : cached->contributors)
            if (node != req.root_cube) req.plan.push_back(node);
          step_plan(req.id);
          return;
        }
      }
    }
  }

  switch (req.strategy) {
    case SearchStrategy::kTopDownSequential: {
      req.mode = Mode::kTopDown;
      for (int i : cube_.zero_positions(req.root_cube))
        req.queue.emplace_back(req.root_cube | (1ULL << i), i);
      step_top_down(req.id);
      return;
    }
    case SearchStrategy::kBottomUpSequential: {
      req.mode = Mode::kPlan;
      // Deepest nodes first; the root was already examined on arrival.
      for (cube::CubeId w : sbt.bottom_up_order())
        if (w != req.root_cube) req.plan.push_back(w);
      step_plan(req.id);
      return;
    }
    case SearchStrategy::kLevelParallel: {
      req.mode = Mode::kLevels;
      req.levels = sbt.levels();
      req.level = 1;  // level 0 is the root
      req.stats.levels = 1;
      start_level(req.id);
      return;
    }
  }
}

OverlayIndex::Visit& OverlayIndex::ensure_scan(Request& req, cube::CubeId w,
                                               sim::EndpointId peer,
                                               bool ship) {
  auto [it, fresh] = req.visits.try_emplace(w);
  Visit& v = it->second;
  if (fresh) {
    v.peer = peer;
    if (cfg_.hot.enabled) popularity_.note(net_.now(), w);
    PeerState& ps = peer_state(peer);
    // Replica holders scan their write-through copy; the ordered entry map
    // makes the batch byte-identical to the primary's scan.
    if (const IndexTable* table = table_at(ps, w)) {
      const std::size_t want = room(req);
      HitBatchPool::Batch batch = hit_pool_.acquire();
      table->supersets_into(req.query, want == kUnlimited ? 0 : want,
                            &v.truncated, *batch);
      // An empty buffer goes straight back to the pool.
      if (!batch->empty()) v.batch = std::move(batch);
    }
    v.c1 = v.batch ? v.batch->size() : 0;
    // Control verdict is fixed at first scan so retransmitted arrivals
    // replay the identical reply (collected may have moved on since). The
    // table's truncation indicator stands in for "the want limit filled":
    // a cut-off scan means the threshold is reached with this batch, even
    // when the cut landed mid-way through one entry's object set.
    v.stop = req.mode != Mode::kLevels && req.threshold != 0 &&
             (v.truncated || req.collected + v.c1 >= req.threshold);
    if (v.c1 > 0) ++req.results_expected;
    emit(req.id, "scan", w, peer);
  }
  if (v.c1 > 0 && ship) {
    // Matching IDs travel directly to the searcher (paper protocol); a
    // retransmitted query replays the same batch, deduplicated there. The
    // closure shares the pooled buffer by pointer — no payload copy.
    ++req.stats.messages;
    net_.send(peer, req.searcher, "kws.results", v.c1 * kHitBytes,
              [this, id = req.id, w, batch = v.batch] {
                on_results(id, w, batch);
              });
    if (cfg_.step_timeout == 0) {
      // No retransmission: the memo will never be replayed. Drop its
      // reference; the in-flight message keeps the buffer alive and it
      // returns to the pool once delivered.
      v.batch.reset();
    }
  }
  return v;
}

void OverlayIndex::on_results(std::uint64_t req_id, cube::CubeId w,
                              const HitBatchPool::Batch& batch) {
  Request* r = find(req_id);
  if (!r) return;
  if (!r->delivered.insert(w).second) return;  // duplicate replay
  r->node_hits.emplace(w, batch);
  ++r->results_received;
  maybe_complete(req_id);
}

std::vector<Hit> OverlayIndex::assemble_hits(const Request& req) const {
  std::size_t total = 0;
  for (const auto& [w, batch] : req.node_hits) total += batch->size();
  std::vector<Hit> out;
  out.reserve(total);
  for (const cube::CubeId w : req.visit_order) {
    const auto it = req.node_hits.find(w);
    if (it == req.node_hits.end()) continue;
    out.insert(out.end(), it->second->begin(), it->second->end());
  }
  return out;
}

void OverlayIndex::on_query_arrived(std::uint64_t req_id, cube::CubeId w,
                                    sim::EndpointId peer) {
  Request* req = find(req_id);
  if (!req) return;
  // Demoted while the spread visit was in flight: drop the arrival and let
  // the step timer retransmit through a fresh pick (only when timers exist
  // to recover — without them a drop would hang the search). Un-learn the
  // contact if it pointed here, so the retransmit re-resolves instead of
  // repeating the drop forever.
  if (cfg_.hot.enabled && cfg_.step_timeout != 0 &&
      !req->visits.contains(w) && !can_serve(peer, w)) {
    PeerState& ps = peer_state(req->root_peer);
    if (const auto it = ps.contacts.find(w);
        it != ps.contacts.end() && it->second == peer)
      ps.contacts.erase(it);
    return;
  }
  if (!req->visits.contains(w)) ++req->stats.nodes_contacted;
  const Visit& v = ensure_scan(*req, w, peer);
  // T_CONT carries the child list L; T_STOP ends the search. Either way one
  // direct control message back to the coordinator (replayed on
  // retransmitted queries so a lost reply cannot stall the coordinator).
  ++req->stats.messages;
  net_.send(peer, req->root_peer, v.stop ? "kws.t_stop" : "kws.t_cont",
            kCtrlBytes, [this, req_id, w, peer, c1 = v.c1] {
              on_node_answered(req_id, w, peer, c1);
            });
}

void OverlayIndex::visit_node(std::uint64_t req_id, cube::CubeId w) {
  Request* req = find(req_id);
  if (!req) return;
  // Hot cell: rotate the visit across owner + replica holders. A lost
  // spread visit re-enters here via the step timer and re-picks, so loss
  // degrades to the usual individual retransmission.
  if (const sim::EndpointId rep = pick_replica(w); rep != 0) {
    visit_replica(req_id, w, rep);
    return;
  }
  send_to_cube_node(
      req->root_peer, w, "kws.t_query", kCtrlBytes,
      [this, req_id](std::size_t n) {
        if (Request* r = find(req_id)) r->stats.messages += n;
      },
      [this, req_id, w](sim::EndpointId peer) {
        on_query_arrived(req_id, w, peer);
      },
      [this, req_id, w] {
        // A learned contact died: the step falls back to DHT routing and
        // lands on the surrogate owner, whose table may miss entries lost
        // with the peer — the result can no longer be trusted as complete.
        Request* r = find(req_id);
        if (!r) return;
        ++r->stats.failovers;
        r->stats.degraded = true;
        net_.metrics().count("kws.failover");
        emit(req_id, "failover", w, 2);
      });
  arm_step_timer(req_id, w);
}

void OverlayIndex::arm_step_timer(std::uint64_t req_id, cube::CubeId w) {
  if (cfg_.step_timeout == 0) return;
  Request* req = find(req_id);
  if (!req || req->answered.contains(w)) return;
  if (const auto it = req->step_timers.find(w); it != req->step_timers.end())
    net_.cancel_timer(it->second);
  const auto attempts_it = req->step_attempts.find(w);
  const int attempt =
      (attempts_it == req->step_attempts.end() ? 0 : attempts_it->second) + 1;
  req->step_timers[w] =
      net_.set_timer(resend_delay(attempt), [this, req_id, w] {
        Request* r = find(req_id);
        if (!r || r->answered.contains(w)) return;
        r->step_timers.erase(w);
        int& attempts = r->step_attempts[w];
        if (++attempts > cfg_.max_retries) {
          abort_request(req_id);
          return;
        }
        ++r->stats.retransmits;
        net_.metrics().count("kws.retransmit");
        emit(req_id, "retransmit", w);
        // Repeated timeouts on one step usually mean the coordinator (or
        // its stale idea of the root) is dead, not that messages are merely
        // slow: re-resolve the root before burning more of the budget.
        if (cfg_.failover_after != 0 && attempts >= cfg_.failover_after)
          failover_root(req_id);
        visit_node(req_id, w);
      });
}

void OverlayIndex::send_to_cube_node(
    sim::EndpointId from, cube::CubeId target, const char* kind,
    std::size_t bytes, const Charge& charge,
    std::function<void(sim::EndpointId)> at_target,
    const std::function<void()>& on_failover) {
  if (cfg_.cache_contacts) {
    PeerState& ps = peer_state(from);
    if (const auto it = ps.contacts.find(target); it != ps.contacts.end()) {
      if (net_.is_registered(it->second)) {
        const sim::EndpointId to = it->second;
        charge(1);
        net_.send(from, to, kind, bytes,
                  [to, at_target = std::move(at_target)] { at_target(to); });
        return;
      }
      ps.contacts.erase(it);  // stale contact: the peer is gone
      if (on_failover) on_failover();
    }
  }
  overlay_.route(from, ring_key_of(target), kind, bytes,
                 [this, charge, at_target = std::move(at_target)](
                     const dht::Overlay::RouteResult& rr) {
                   charge(static_cast<std::size_t>(rr.hops));
                   at_target(overlay_.endpoint_of(rr.owner));
                 });
}

void OverlayIndex::step_top_down(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req) return;
  if (req->queue.empty()) {
    req->stopped_early = false;
    finish(req_id);
    return;
  }
  const cube::CubeId w = req->queue.front().first;
  req->queue.pop_front();
  ++req->stats.rounds;
  req->visit_order.push_back(w);
  visit_node(req_id, w);
}

void OverlayIndex::step_plan(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req) return;
  if (req->plan_pos >= req->plan.size()) {
    req->stopped_early = false;
    finish(req_id);
    return;
  }
  const cube::CubeId w = req->plan[req->plan_pos++];
  ++req->stats.rounds;
  req->visit_order.push_back(w);
  visit_node(req_id, w);
}

void OverlayIndex::start_level(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req) return;
  if (req->level >= req->levels.size()) {
    req->stopped_early = false;
    finish(req_id);
    return;
  }
  // Copy: visit_node/send_visit_batch below may touch peers_, and req
  // itself must not be dereferenced after dispatching (a local round trip
  // could complete the request in place).
  const std::vector<cube::CubeId> nodes = req->levels[req->level];
  ++req->level;
  ++req->stats.levels;
  ++req->stats.rounds;
  req->outstanding = nodes.size();
  emit(req_id, "level", req->level - 1, nodes.size());
  for (const cube::CubeId w : nodes) req->visit_order.push_back(w);

  if (cfg_.coalesce_visits && cfg_.cache_contacts) {
    // Group this round's nodes by live cached contact; two or more nodes
    // co-hosted at one peer travel as a single VisitBatch wire message.
    // Nodes without a usable contact (cold cache, dead peer) go through
    // visit_node, which handles DHT routing and surrogate failover.
    std::unordered_map<sim::EndpointId, std::vector<cube::CubeId>> groups;
    std::unordered_map<cube::CubeId, sim::EndpointId> co_host;
    // Hot cells in this round rotate onto a replica holder; the holder
    // joins the co-host grouping like any contact, so a replicated node
    // still coalesces with whatever else that peer serves this round.
    std::unordered_map<cube::CubeId, sim::EndpointId> replica_dest;
    {
      const PeerState& ps = peer_state(req->root_peer);
      for (const cube::CubeId w : nodes) {
        if (const sim::EndpointId rep = pick_replica(w); rep != 0) {
          replica_dest.emplace(w, rep);
          groups[rep].push_back(w);
          co_host.emplace(w, rep);
          continue;
        }
        const auto it = ps.contacts.find(w);
        if (it != ps.contacts.end() && net_.is_registered(it->second)) {
          groups[it->second].push_back(w);
          co_host.emplace(w, it->second);
        }
      }
    }
    // Dispatch in level order: a group goes out when its first member is
    // reached, so the wire order is deterministic.
    std::unordered_set<sim::EndpointId> batched;
    for (const cube::CubeId w : nodes) {
      const auto cit = co_host.find(w);
      if (cit == co_host.end() || groups[cit->second].size() < 2) {
        // Already-picked replica singles go out directly — re-picking in
        // visit_node would advance the rotation cursor a second time.
        if (const auto rit = replica_dest.find(w); rit != replica_dest.end())
          visit_replica(req_id, w, rit->second);
        else
          visit_node(req_id, w);
        continue;
      }
      if (replica_dest.contains(w)) {
        ++replica_spread_visits_;
        net_.metrics().count("kws.replica_spread");
        emit(req_id, "spread", w, cit->second);
      }
      if (batched.insert(cit->second).second)
        send_visit_batch(req_id, cit->second, groups[cit->second]);
    }
    return;
  }
  for (const cube::CubeId w : nodes) visit_node(req_id, w);
}

void OverlayIndex::send_visit_batch(std::uint64_t req_id, sim::EndpointId peer,
                                    const std::vector<cube::CubeId>& nodes) {
  Request* req = find(req_id);
  if (!req) return;
  ++req->stats.messages;
  ++req->stats.coalesced_batches;
  req->stats.coalesced_visits += nodes.size();
  net_.metrics().count("kws.coalesced_visits", nodes.size());
  emit(req_id, "coalesce", peer, nodes.size());
  net_.send(req->root_peer, peer, "kws.visit_batch",
            kCtrlBytes + nodes.size() * 8,
            [this, req_id, peer, nodes] {
              on_visit_batch_arrived(req_id, nodes, peer);
            });
  // The usual per-node step guards: a lost batch (or reply) retransmits
  // each node individually via visit_node, replaying the memoized scans.
  for (const cube::CubeId w : nodes) arm_step_timer(req_id, w);
}

void OverlayIndex::on_visit_batch_arrived(
    std::uint64_t req_id, const std::vector<cube::CubeId>& nodes,
    sim::EndpointId peer) {
  Request* req = find(req_id);
  if (!req) return;
  // Scan every co-hosted node (memoized — idempotent when the batch is
  // duplicated or raced by an individual retransmission), then merge: one
  // result message carrying per-node batches to the searcher, one control
  // reply carrying per-node verdicts to the coordinator. Nodes with empty
  // batches ride along in the reply for free.
  std::vector<std::pair<cube::CubeId, HitBatchPool::Batch>> batches;
  std::vector<std::pair<cube::CubeId, std::size_t>> verdicts;
  std::size_t total_hits = 0;
  for (const cube::CubeId w : nodes) {
    // Same demotion race as on_query_arrived: leave the node out of the
    // reply (its step timer retransmits it individually) and un-learn the
    // stale contact so the retransmit re-resolves.
    if (cfg_.hot.enabled && cfg_.step_timeout != 0 &&
        !req->visits.contains(w) && !can_serve(peer, w)) {
      PeerState& ps = peer_state(req->root_peer);
      if (const auto it = ps.contacts.find(w);
          it != ps.contacts.end() && it->second == peer)
        ps.contacts.erase(it);
      continue;
    }
    if (!req->visits.contains(w)) ++req->stats.nodes_contacted;
    const Visit& v = ensure_scan(*req, w, peer, /*ship=*/false);
    verdicts.emplace_back(w, v.c1);
    if (v.c1 > 0) {
      batches.emplace_back(w, v.batch);  // shares the buffer, no copy
      total_hits += v.c1;
    }
  }
  if (cfg_.step_timeout == 0) {
    // No retransmission: the memos will never be replayed. The merged
    // result message below still holds its own references.
    for (const cube::CubeId w : nodes) req->visits[w].batch.reset();
  }
  if (total_hits > 0) {
    ++req->stats.messages;
    net_.send(peer, req->searcher, "kws.batch_results",
              total_hits * kHitBytes + batches.size() * 8,
              [this, req_id, batches = std::move(batches)] {
                for (const auto& [w, batch] : batches)
                  on_results(req_id, w, batch);
              });
  }
  ++req->stats.messages;
  net_.send(peer, req->root_peer, "kws.batch_reply",
            kCtrlBytes + verdicts.size() * 12,
            [this, req_id, peer, verdicts = std::move(verdicts)] {
              for (const auto& [w, c1] : verdicts)
                on_node_answered(req_id, w, peer, c1);
            });
}

void OverlayIndex::on_node_answered(std::uint64_t req_id, cube::CubeId w,
                                    sim::EndpointId peer, std::size_t c1) {
  Request* req = find(req_id);
  if (!req) return;
  if (!req->answered.insert(w).second) return;  // duplicate control reply
  if (const auto it = req->step_timers.find(w); it != req->step_timers.end()) {
    net_.cancel_timer(it->second);
    req->step_timers.erase(it);
  }
  req->step_attempts.erase(w);
  req->collected += c1;
  if (c1 > 0)
    req->contributors.emplace_back(w, static_cast<std::uint32_t>(c1));
  // Only learn the node's *current owner* as its contact. A replica holder
  // must never be cached (the contact would pin all future traffic onto one
  // replica, defeating the rotation) — and checking "is it a holder?"
  // instead is not enough, because a holder demoted while its reply was in
  // flight would pass that check and poison the contact cache with a peer
  // that can no longer serve the node.
  if (cfg_.cache_contacts && peer == peer_of(w))
    peer_state(req->root_peer).contacts[w] = peer;

  switch (req->mode) {
    case Mode::kTopDown: {
      if (req->threshold != 0 && req->collected >= req->threshold) {
        req->stopped_early = !req->queue.empty();
        finish(req_id);
        return;
      }
      // Expand children: free dimensions below the arrival dimension. The
      // arrival dimension is w's lowest set bit that the root lacks.
      const std::uint64_t diff = w ^ req->root_cube;
      const int d = lowest_set_bit(diff);
      for (int i : cube_.zero_positions(w)) {
        if (i >= d) break;
        req->queue.emplace_back(w | (1ULL << i), i);
      }
      step_top_down(req_id);
      return;
    }
    case Mode::kPlan: {
      if (req->threshold != 0 && req->collected >= req->threshold) {
        req->stopped_early = req->plan_pos < req->plan.size();
        finish(req_id);
        return;
      }
      step_plan(req_id);
      return;
    }
    case Mode::kLevels: {
      if (req->outstanding > 0) --req->outstanding;
      if (req->outstanding != 0) return;
      if (req->threshold != 0 && req->collected >= req->threshold) {
        req->stopped_early = req->level < req->levels.size();
        finish(req_id);
        return;
      }
      start_level(req_id);
      return;
    }
  }
}

void OverlayIndex::finish(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req) return;
  switch (req->mode) {
    case Mode::kTopDown:
    case Mode::kLevels:
      req->stats.complete = !req->stopped_early;
      break;
    case Mode::kPlan:
      req->stats.complete =
          !req->stopped_early && req->plan_complete_means_complete;
      break;
  }

  if (cfg_.cache_capacity != 0 && req->record_in_cache) {
    PeerState& ps = peer_state(req->root_peer);
    auto cit = ps.caches.try_emplace(req->root_cube, cfg_.cache_capacity).first;
    CachedTraversal summary;
    summary.contributors = req->contributors;
    summary.complete = req->stats.complete;
    // Stamp with the epoch captured at request start: if a mutation raced
    // this traversal, the entry is already stale and will never be served.
    cit->second.insert(req->query, std::move(summary), req->epoch);
  }

  send_done(req_id);
}

void OverlayIndex::send_done(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req || req->done_received) return;
  ++req->done_attempts;
  ++req->stats.messages;  // the final done notification to the searcher
  net_.send(req->root_peer, req->searcher, "kws.done", kCtrlBytes,
            [this, req_id] {
              Request* r = find(req_id);
              if (!r || r->done_received) return;
              r->done_received = true;
              if (r->done_timer != 0) {
                net_.cancel_timer(r->done_timer);
                r->done_timer = 0;
              }
              maybe_complete(req_id);
            });
  if (cfg_.step_timeout == 0) return;
  req->done_timer = net_.set_timer(resend_delay(req->done_attempts),
                                   [this, req_id] {
    Request* r = find(req_id);
    if (!r || r->done_received) return;
    r->done_timer = 0;
    if (r->done_attempts > cfg_.max_retries) {
      abort_request(req_id);
      return;
    }
    ++r->stats.retransmits;
    net_.metrics().count("kws.retransmit");
    emit(req_id, "retransmit", r->root_cube, 1);
    send_done(req_id);
  });
}

void OverlayIndex::arm_repair_timer(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req || req->repair_timer != 0) return;
  if (req->repair_attempts >= cfg_.max_retries) {
    abort_request(req_id);
    return;
  }
  ++req->repair_attempts;
  req->repair_timer = net_.set_timer(resend_delay(req->repair_attempts),
                                     [this, req_id] {
    Request* r = find(req_id);
    if (!r) return;
    r->repair_timer = 0;
    for (auto& [node, v] : r->visits) {
      if (v.c1 == 0 || r->delivered.contains(node)) continue;
      if (cfg_.failover_after != 0 && !net_.is_registered(v.peer)) {
        // The batch's origin died with the batch still undelivered: the
        // hits are unrecoverable until background repair re-homes the
        // entries. Serve what arrived as a degraded result instead of
        // burning the budget re-shipping from a dead peer.
        r->delivered.insert(node);
        ++r->results_received;
        ++r->stats.failovers;
        r->stats.degraded = true;
        r->stats.complete = false;
        net_.metrics().count("kws.failover");
        emit(req_id, "failover", node, 1);
        continue;
      }
      ++r->stats.retransmits;
      ++r->stats.messages;
      net_.metrics().count("kws.retransmit");
      emit(req_id, "retransmit", node, 2);
      net_.send(v.peer, r->searcher, "kws.results", v.c1 * kHitBytes,
                [this, req_id, w = node, batch = v.batch] {
                  on_results(req_id, w, batch);
                });
    }
    maybe_complete(req_id);  // arms the next round if batches are lost again
  });
}

void OverlayIndex::release_timers(Request& req) {
  net::Transport& clock = net_;
  if (req.root_timer != 0) clock.cancel_timer(req.root_timer);
  if (req.done_timer != 0) clock.cancel_timer(req.done_timer);
  if (req.repair_timer != 0) clock.cancel_timer(req.repair_timer);
  req.root_timer = req.done_timer = req.repair_timer = 0;
  for (const auto& [node, timer] : req.step_timers) clock.cancel_timer(timer);
  req.step_timers.clear();
}

void OverlayIndex::abort_request(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req) return;
  release_timers(*req);
  net_.metrics().count("kws.request_failed");
  emit(req_id, "failed");
  SearchResult result;
  result.hits = assemble_hits(*req);
  result.stats = req->stats;
  result.stats.failed = true;
  result.stats.complete = false;
  SearchCallback cb = std::move(req->done);
  requests_.erase(req_id);
  if (cb) cb(result);
}

void OverlayIndex::maybe_complete(std::uint64_t req_id) {
  Request* req = find(req_id);
  if (!req) return;
  if (!req->done_received || req->results_received != req->results_expected) {
    // A result batch can be lost even though the done arrived; after a
    // grace timeout re-ship whatever the searcher is still missing.
    if (req->done_received && cfg_.step_timeout != 0) arm_repair_timer(req_id);
    return;
  }
  release_timers(*req);
  SearchResult result;
  result.hits = assemble_hits(*req);
  result.stats = req->stats;
  SearchCallback cb = std::move(req->done);
  requests_.erase(req_id);
  if (cb) cb(result);
}

// --- Cumulative superset search ------------------------------------------------

OverlayIndex::CumulativeState* OverlayIndex::find_session(std::uint64_t id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::uint64_t OverlayIndex::open_cumulative(sim::EndpointId searcher,
                                            const KeywordSet& query) {
  if (query.empty())
    throw std::invalid_argument("open_cumulative: empty query");
  const std::uint64_t id = next_session_++;
  auto s = std::make_unique<CumulativeState>();
  s->query = query;
  s->searcher = searcher;
  s->root_cube = hasher_.responsible_node(query);
  sessions_[id] = std::move(s);
  return id;
}

bool OverlayIndex::cumulative_exhausted(std::uint64_t session) const {
  const auto it = sessions_.find(session);
  return it == sessions_.end() || it->second->exhausted;
}

void OverlayIndex::close_cumulative(std::uint64_t session) {
  sessions_.erase(session);
}

void OverlayIndex::cumulative_next(std::uint64_t session, std::size_t count,
                                   SearchCallback done) {
  CumulativeState* s = find_session(session);
  if (s == nullptr)
    throw std::invalid_argument("cumulative_next: unknown session");
  if (count == 0)
    throw std::invalid_argument("cumulative_next: count must be > 0");
  s->want = count;
  s->got = 0;
  s->hits.clear();
  s->stats = SearchStats{};
  s->results_expected = 0;
  s->results_received = 0;
  s->batch_done = false;
  s->done = std::move(done);

  if (s->exhausted) {
    // Nothing left; answer locally (no messages).
    net_.schedule_in(0, [this, session] {
      CumulativeState* st = find_session(session);
      if (!st) return;
      st->batch_done = true;
      cumulative_maybe_complete(session);
    });
    return;
  }

  if (!s->resolved) {
    // First page: route the continuation request to the root.
    overlay_.route(s->searcher, ring_key_of(s->root_cube), "kws.c_open",
                   kCtrlBytes + s->query.size() * 12,
                   [this, session](const dht::Overlay::RouteResult& rr) {
                     CumulativeState* st = find_session(session);
                     if (!st) return;
                     st->root_peer = overlay_.endpoint_of(rr.owner);
                     st->resolved = true;
                     st->stats.messages += static_cast<std::size_t>(rr.hops);
                     st->stats.nodes_contacted = 1;
                     cumulative_step(session);
                   });
  } else {
    ++s->stats.messages;  // direct continuation to the known root
    s->stats.nodes_contacted = 1;
    net_.send(s->searcher, s->root_peer, "kws.c_next", kCtrlBytes,
              [this, session] { cumulative_step(session); });
  }
}

void OverlayIndex::cumulative_step(std::uint64_t session) {
  CumulativeState* s = find_session(session);
  if (!s) return;
  if (s->got >= s->want) {
    cumulative_finish_batch(session);
    return;
  }
  if (!s->root_scanned) {
    // The root's own table is the virtual first node; scanning it costs no
    // network message. Its "dimension" spans everything (children = all
    // zero dimensions), encoded as the cube dimension.
    cumulative_visit(session, s->root_cube, cube_.dimension(), s->offset);
    return;
  }
  if (s->queue.empty()) {
    s->exhausted = true;
    cumulative_finish_batch(session);
    return;
  }
  const auto [w, d] = s->queue.front();
  ++s->stats.rounds;
  cumulative_visit(session, w, d, s->offset);
}

void OverlayIndex::cumulative_visit(std::uint64_t session, cube::CubeId w,
                                    int dim, std::size_t offset) {
  CumulativeState* s = find_session(session);
  if (!s) return;
  const std::size_t room = s->want - s->got;
  const Charge charge = [this, session](std::size_t n) {
    if (CumulativeState* st = find_session(session)) st->stats.messages += n;
  };

  // The scan + reply work that happens at the peer holding cube node w.
  auto scan_at = [this, session, w, dim, offset, room,
                  charge](sim::EndpointId peer) {
    CumulativeState* st = find_session(session);
    if (!st) return;
    if (w != st->root_cube) ++st->stats.nodes_contacted;
    PeerState& ps = peer_state(peer);
    std::vector<Hit> all;
    if (const auto it = ps.tables.find(w); it != ps.tables.end())
      all = it->second.supersets(st->query, 0);
    const std::size_t total = all.size();
    std::vector<Hit> batch;
    for (std::size_t i = offset; i < all.size() && batch.size() < room; ++i)
      batch.push_back(all[i]);
    const std::size_t taken = batch.size();
    if (taken > 0) {
      // Ship this node's slice straight to the searcher. Distinct kind from
      // the one-shot search's "kws.results": cumulative delivery has no
      // retransmission/dedup layer, so fault injectors must not target it.
      ++st->results_expected;
      charge(1);
      net_.send(peer, st->searcher, "kws.c_results", taken * kHitBytes,
                [this, session, batch = std::move(batch)] {
                  CumulativeState* s2 = find_session(session);
                  if (!s2) return;
                  s2->hits.insert(s2->hits.end(), batch.begin(), batch.end());
                  ++s2->results_received;
                  cumulative_maybe_complete(session);
                });
    }
    // Report (taken, total) back to the root coordinator.
    auto continue_at_root = [this, session, w, dim, peer, offset, taken,
                             total] {
      CumulativeState* s2 = find_session(session);
      if (!s2) return;
      if (cfg_.cache_contacts && w != s2->root_cube)
        peer_state(s2->root_peer).contacts[w] = peer;
      s2->got += taken;
      if (offset + taken < total) {
        s2->offset = offset + taken;  // node not fully consumed: stay on it
      } else {
        s2->offset = 0;
        if (w == s2->root_cube && !s2->root_scanned) {
          s2->root_scanned = true;
          for (int i : cube_.zero_positions(s2->root_cube))
            s2->queue.emplace_back(s2->root_cube | (1ULL << i), i);
        } else {
          s2->queue.pop_front();
          for (int i : cube_.zero_positions(w)) {
            if (i >= dim) break;
            s2->queue.emplace_back(w | (1ULL << i), i);
          }
        }
      }
      cumulative_step(session);
    };
    if (w == st->root_cube) {
      // Local bookkeeping at the root itself: no network message.
      net_.send(peer, peer, "kws.c_local", 0, std::move(continue_at_root));
    } else {
      charge(1);
      net_.send(peer, st->root_peer, "kws.c_cont", kCtrlBytes,
                std::move(continue_at_root));
    }
  };

  if (w == s->root_cube) {
    scan_at(s->root_peer);
  } else {
    charge(0);  // cost accounted inside send_to_cube_node
    send_to_cube_node(s->root_peer, w, "kws.c_query", kCtrlBytes, charge,
                      std::move(scan_at));
  }
}

void OverlayIndex::cumulative_finish_batch(std::uint64_t session) {
  CumulativeState* s = find_session(session);
  if (!s) return;
  ++s->stats.messages;  // done notification root -> searcher
  net_.send(s->root_peer, s->searcher, "kws.c_done", kCtrlBytes,
            [this, session] {
              CumulativeState* st = find_session(session);
              if (!st) return;
              st->batch_done = true;
              cumulative_maybe_complete(session);
            });
}

void OverlayIndex::cumulative_maybe_complete(std::uint64_t session) {
  CumulativeState* s = find_session(session);
  if (!s) return;
  if (!s->batch_done || s->results_received != s->results_expected) return;
  SearchResult result;
  result.hits = std::move(s->hits);
  s->hits.clear();
  result.stats = s->stats;
  result.stats.complete = s->exhausted;
  SearchCallback cb = std::move(s->done);
  s->done = nullptr;
  if (cb) cb(result);
}

// --- Maintenance / introspection ---------------------------------------------

std::uint64_t OverlayIndex::repair_placement() {
  // Collect misplaced tables first; mutating peers_ while iterating would
  // invalidate iterators.
  std::vector<std::pair<sim::EndpointId, cube::CubeId>> misplaced;
  for (auto& [ep, ps] : peers_) {
    if (!overlay_.is_live(ep)) continue;
    for (auto& [u, table] : ps.tables)
      if (peer_of(u) != ep) misplaced.emplace_back(ep, u);
  }
  std::uint64_t moved = 0;
  for (const auto& [ep, u] : misplaced) {
    IndexTable table = std::move(peers_[ep].tables[u]);
    peers_[ep].tables.erase(u);
    PeerState& dst = peer_state(peer_of(u));
    for (const auto& [k, objects] : table.entries()) {
      for (ObjectId o : objects) {
        dst.tables[u].add(k, o);
        replica_add(u, k, o);
        ++moved;
      }
    }
    net_.metrics().count("kws.repair_entries", table.object_count());
  }
  // Contact and traversal caches are stale after any placement change.
  if (moved > 0) ++mutation_epoch_;
  for (auto& [ep, ps] : peers_) {
    ps.contacts.clear();
    ps.caches.clear();
  }
  return moved;
}

std::uint64_t OverlayIndex::repair_placement(std::size_t max_entries) {
  // Collect up to the budget of individual misplaced entries first (moving
  // while iterating would invalidate iterators), then apply the moves.
  struct Move {
    sim::EndpointId ep;
    cube::CubeId u;
    KeywordSet keywords;
    ObjectId object;
  };
  std::vector<Move> moves;
  for (const auto& [ep, ps] : peers_) {
    if (moves.size() >= max_entries) break;
    if (!overlay_.is_live(ep)) continue;
    for (const auto& [u, table] : ps.tables) {
      if (moves.size() >= max_entries) break;
      if (peer_of(u) == ep) continue;
      for (const auto& [k, objects] : table.entries()) {
        if (moves.size() >= max_entries) break;
        for (ObjectId o : objects) {
          if (moves.size() >= max_entries) break;
          moves.push_back(Move{ep, u, k, o});
        }
      }
    }
  }
  for (const Move& m : moves) {
    PeerState& src = peers_[m.ep];
    if (const auto it = src.tables.find(m.u); it != src.tables.end()) {
      it->second.remove(m.keywords, m.object);
      if (it->second.empty()) src.tables.erase(it);
    }
    peer_state(peer_of(m.u)).tables[m.u].add(m.keywords, m.object);
    // A placement move is not a deletion: replicas keep (or gain) the entry.
    replica_add(m.u, m.keywords, m.object);
  }
  if (!moves.empty()) {
    net_.metrics().count("kws.repair_entries", moves.size());
    ++mutation_epoch_;
    // Placement changed: learned contacts and traversal summaries are stale.
    for (auto& [ep, ps] : peers_) {
      ps.contacts.clear();
      ps.caches.clear();
    }
  }
  return moves.size();
}

std::size_t OverlayIndex::misplaced_entries() const {
  std::size_t misplaced = 0;
  for (const auto& [ep, ps] : peers_) {
    if (!overlay_.is_live(ep)) continue;
    for (const auto& [u, table] : ps.tables)
      if (peer_of(u) != ep) misplaced += table.object_count();
  }
  return misplaced;
}

bool OverlayIndex::has_entry(const KeywordSet& keywords,
                             ObjectId object) const {
  const IndexTable* t = table_of(hasher_.responsible_node(keywords));
  if (t == nullptr) return false;
  const auto& entries = t->entries();
  const auto it = entries.find(keywords);
  return it != entries.end() && it->second.contains(object);
}

void OverlayIndex::purge_dead() {
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (!overlay_.is_live(it->first)) {
      // Entries held by the dead peer are gone: surviving cached traversals
      // that counted on them are stale from this point on.
      if (!it->second.tables.empty()) ++mutation_epoch_;
      net_.metrics().count("kws.entries_lost",
                           [&] {
                             std::uint64_t n = 0;
                             for (const auto& [u, t] : it->second.tables)
                               n += t.object_count();
                             return n;
                           }());
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- Hot-cell replication ----------------------------------------------------

void OverlayIndex::replica_add(cube::CubeId u, const KeywordSet& keywords,
                               ObjectId o) {
  if (!cfg_.hot.enabled) return;
  const auto it = replicas_.find(u);
  if (it == replicas_.end()) return;
  for (const sim::EndpointId h : it->second.holders) {
    if (!net_.is_registered(h)) continue;
    const auto pit = peers_.find(h);
    if (pit == peers_.end()) continue;
    pit->second.replica_tables[u].add(keywords, o);
  }
}

void OverlayIndex::replica_remove(cube::CubeId u, const KeywordSet& keywords,
                                  ObjectId o) {
  if (!cfg_.hot.enabled) return;
  const auto it = replicas_.find(u);
  if (it == replicas_.end()) return;
  for (const sim::EndpointId h : it->second.holders) {
    const auto pit = peers_.find(h);
    if (pit == peers_.end()) continue;
    const auto tit = pit->second.replica_tables.find(u);
    if (tit == pit->second.replica_tables.end()) continue;
    tit->second.remove(keywords, o);
    if (tit->second.empty()) pit->second.replica_tables.erase(tit);
  }
}

bool OverlayIndex::is_replica_holder(cube::CubeId u,
                                     sim::EndpointId peer) const {
  if (!cfg_.hot.enabled) return false;
  const auto it = replicas_.find(u);
  if (it == replicas_.end()) return false;
  const auto& holders = it->second.holders;
  return std::find(holders.begin(), holders.end(), peer) != holders.end();
}

sim::EndpointId OverlayIndex::pick_replica(cube::CubeId w) {
  if (!cfg_.hot.enabled) return 0;
  const auto it = replicas_.find(w);
  if (it == replicas_.end()) return 0;
  ReplicaSet& rs = it->second;
  if (rs.holders.empty()) return 0;
  // Deterministic round-robin over 1 + holders slots; slot 0 is the owner.
  // Dead holders are skipped (their slot falls through to the next), so a
  // kill degrades the rotation instead of stalling it.
  const std::size_t slots = rs.holders.size() + 1;
  for (std::size_t i = 0; i < slots; ++i) {
    const std::size_t slot = rs.rr++ % slots;
    if (slot == 0) return 0;
    const sim::EndpointId peer = rs.holders[slot - 1];
    if (net_.is_registered(peer)) return peer;
  }
  return 0;
}

void OverlayIndex::visit_replica(std::uint64_t req_id, cube::CubeId w,
                                 sim::EndpointId peer) {
  Request* req = find(req_id);
  if (!req) return;
  ++req->stats.messages;
  ++replica_spread_visits_;
  net_.metrics().count("kws.replica_spread");
  emit(req_id, "spread", w, peer);
  net_.send(req->root_peer, peer, "kws.t_query", kCtrlBytes,
            [this, req_id, w, peer] { on_query_arrived(req_id, w, peer); });
  arm_step_timer(req_id, w);
}

bool OverlayIndex::can_serve(sim::EndpointId peer, cube::CubeId w) const {
  if (peer == peer_of(w)) return true;
  const auto pit = peers_.find(peer);
  return pit != peers_.end() && pit->second.replica_tables.contains(w);
}

const IndexTable* OverlayIndex::table_at(const PeerState& ps,
                                         cube::CubeId w) const {
  if (const auto it = ps.tables.find(w); it != ps.tables.end())
    return &it->second;
  if (cfg_.hot.enabled)
    if (const auto it = ps.replica_tables.find(w);
        it != ps.replica_tables.end())
      return &it->second;
  return nullptr;
}

std::uint64_t OverlayIndex::replication_step(std::size_t max_entries) {
  if (!cfg_.hot.enabled) return 0;
  const sim::Time now = net_.now();
  popularity_.rotate_to(now);

  // (1) The hot set: cells above the scan threshold, hottest first.
  std::unordered_map<cube::CubeId, std::uint64_t> counts = popularity_.cur;
  for (const auto& [u, n] : popularity_.prev) counts[u] += n;
  std::vector<std::pair<std::uint64_t, cube::CubeId>> ranked;
  for (const auto& [u, n] : counts)
    if (n >= cfg_.hot.min_scans) ranked.emplace_back(n, u);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (ranked.size() > cfg_.hot.max_hot) ranked.resize(cfg_.hot.max_hot);
  std::unordered_set<cube::CubeId> hot;
  for (const auto& [n, u] : ranked) hot.insert(u);

  // (2) Demote cells that cooled off: drop their replica copies.
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    if (hot.contains(it->first)) {
      ++it;
      continue;
    }
    for (const sim::EndpointId h : it->second.holders) {
      const auto pit = peers_.find(h);
      if (pit != peers_.end()) pit->second.replica_tables.erase(it->first);
    }
    ++replica_demotions_;
    net_.metrics().count("kws.replica_demotion");
    it = replicas_.erase(it);
  }

  std::uint64_t copied = 0;

  // (3) Restore: a hot cell's owner died and took the primary table with
  // it — re-seed the (surrogate) owner from a surviving replica before the
  // promote pass resyncs holders from the owner.
  bool restored = false;
  for (auto& [u, rs] : replicas_) {
    std::erase_if(rs.holders, [this](sim::EndpointId h) {
      return !net_.is_registered(h);
    });
    if (rs.holders.empty() || copied >= max_entries) continue;
    const auto hit = peers_.find(rs.holders.front());
    if (hit == peers_.end()) continue;
    const auto rtit = hit->second.replica_tables.find(u);
    if (rtit == hit->second.replica_tables.end()) continue;
    PeerState& owner_ps = peer_state(peer_of(u));
    const auto primary_has = [&owner_ps, u](const KeywordSet& k, ObjectId o) {
      const auto tit = owner_ps.tables.find(u);
      if (tit == owner_ps.tables.end()) return false;
      const auto& entries = tit->second.entries();
      const auto eit = entries.find(k);
      return eit != entries.end() && eit->second.contains(o);
    };
    for (const auto& [k, objects] : rtit->second.entries()) {
      if (copied >= max_entries) break;
      for (const ObjectId o : objects) {
        if (copied >= max_entries) break;
        if (primary_has(k, o)) continue;
        owner_ps.tables[u].add(k, o);
        ++copied;
        restored = true;
        net_.metrics().count("kws.replica_restore");
      }
    }
  }
  // Restored entries change what searches can see: stale traversal
  // summaries must not outlive them.
  if (restored) ++mutation_epoch_;

  // (4) Promote / resync: full-table copies from the owner onto the least
  // loaded live peers. Placement is a greedy bin-pack: each assignment
  // charges the chosen peer the cell's per-slot scan share, so one
  // replication round spreads the whole hot set instead of piling every
  // cell's replicas onto the same few idle peers (or, worse, onto the
  // owner's ring successors — a hot ring arc would just shift one arc
  // over). Already-synced holders keep their slot: placement churn would
  // re-copy tables for no load benefit. Copies are all-or-nothing per
  // holder within the budget (the first copy of a round always goes
  // through, so progress is guaranteed).
  std::map<sim::EndpointId, std::uint64_t> load_est;
  for (const dht::RingId rid : overlay_.live_ids())
    load_est.emplace(overlay_.endpoint_of(rid), 0);
  for (const auto& [u, n] : counts) {
    const auto rit = replicas_.find(u);
    const std::uint64_t slots =
        1 + (rit != replicas_.end() ? rit->second.holders.size() : 0);
    const std::uint64_t share = n / slots;
    if (const auto oit = load_est.find(peer_of(u)); oit != load_est.end())
      oit->second += share;
    if (rit != replicas_.end())
      for (const sim::EndpointId h : rit->second.holders)
        if (const auto hit2 = load_est.find(h); hit2 != load_est.end())
          hit2->second += share;
  }
  for (const auto& [n, u] : ranked) {
    const dht::RingId owner_ring = overlay_.owner_of(ring_key_of(u));
    const sim::EndpointId owner_ep = overlay_.endpoint_of(owner_ring);
    const IndexTable* src = nullptr;
    if (const auto oit = peers_.find(owner_ep); oit != peers_.end())
      if (const auto tit = oit->second.tables.find(u);
          tit != oit->second.tables.end())
        src = &tit->second;
    const auto rit = replicas_.find(u);
    const std::vector<sim::EndpointId> prior =
        rit != replicas_.end() ? rit->second.holders
                               : std::vector<sim::EndpointId>{};
    const auto want = static_cast<std::size_t>(cfg_.hot.replicas);
    const std::uint64_t share =
        n / (static_cast<std::uint64_t>(cfg_.hot.replicas) + 1);
    std::vector<sim::EndpointId> holders;
    for (const sim::EndpointId ep : prior) {
      if (holders.size() >= want) break;
      if (ep == owner_ep || !net_.is_registered(ep)) continue;
      if (peers_.contains(ep) && peers_.at(ep).replica_tables.contains(u))
        holders.push_back(ep);  // synced: already charged in load_est
    }
    bool budget_hit = false;
    while (holders.size() < want && !budget_hit) {
      const auto best = std::min_element(
          load_est.begin(), load_est.end(),
          [&](const auto& a, const auto& b) {
            const bool a_ok =
                a.first != owner_ep &&
                std::find(holders.begin(), holders.end(), a.first) ==
                    holders.end();
            const bool b_ok =
                b.first != owner_ep &&
                std::find(holders.begin(), holders.end(), b.first) ==
                    holders.end();
            if (a_ok != b_ok) return a_ok;
            return a.second < b.second;  // ties: smallest endpoint id wins
          });
      if (best == load_est.end() || best->first == owner_ep ||
          std::find(holders.begin(), holders.end(), best->first) !=
              holders.end())
        break;  // no eligible peer left
      const sim::EndpointId ep = best->first;
      const std::size_t size = src != nullptr ? src->object_count() : 0;
      if (copied > 0 && copied + size > max_entries) {
        budget_hit = true;
        break;
      }
      PeerState& hp = peer_state(ep);
      // Full copy into a fresh table: a leftover copy from an earlier
      // holder stint would otherwise keep entries withdrawn since.
      hp.replica_tables.erase(u);
      IndexTable& dst = hp.replica_tables[u];
      if (src != nullptr)
        for (const auto& [k, objects] : src->entries())
          for (const ObjectId o : objects) dst.add(k, o);
      copied += size;
      replica_entries_copied_ += size;
      net_.metrics().count("kws.replica_entries", size);
      holders.push_back(ep);
      best->second += share == 0 ? 1 : share;
    }
    // A prior holder that lost its slot stops getting write-through
    // updates; drop its copy so it cannot serve stale scans.
    for (const sim::EndpointId ep : prior) {
      if (std::find(holders.begin(), holders.end(), ep) != holders.end())
        continue;
      const auto pit = peers_.find(ep);
      if (pit != peers_.end()) pit->second.replica_tables.erase(u);
    }
    if (holders.empty()) {
      if (rit != replicas_.end()) replicas_.erase(u);
      continue;
    }
    ReplicaSet& rs = replicas_[u];
    const bool was_replicated = !rs.holders.empty();
    rs.holders = std::move(holders);
    if (!was_replicated) {
      ++replica_promotions_;
      net_.metrics().count("kws.replica_promotion");
    }
  }

  // (5) Popularity-proportional cache sizing rides the same window.
  rebalance_caches();
  return copied;
}

std::size_t OverlayIndex::replication_backlog() const {
  if (!cfg_.hot.enabled) return 0;
  std::size_t backlog = 0;
  for (const auto& [u, rs] : replicas_) {
    const IndexTable* primary = table_of(u);
    const auto contains = [](const IndexTable* t, const KeywordSet& k,
                             ObjectId o) {
      if (t == nullptr) return false;
      const auto eit = t->entries().find(k);
      return eit != t->entries().end() && eit->second.contains(o);
    };
    for (const sim::EndpointId h : rs.holders) {
      if (!net_.is_registered(h)) continue;
      const IndexTable* rep = nullptr;
      if (const auto pit = peers_.find(h); pit != peers_.end())
        if (const auto tit = pit->second.replica_tables.find(u);
            tit != pit->second.replica_tables.end())
          rep = &tit->second;
      // Owner entries the holder still misses (resync direction) ...
      if (primary != nullptr)
        for (const auto& [k, objects] : primary->entries())
          for (const ObjectId o : objects)
            if (!contains(rep, k, o)) ++backlog;
      // ... and replica entries the owner misses (restore direction).
      if (rep != nullptr)
        for (const auto& [k, objects] : rep->entries())
          for (const ObjectId o : objects)
            if (!contains(primary, k, o)) ++backlog;
    }
  }
  return backlog;
}

void OverlayIndex::rebalance_caches() {
  if (!cfg_.hot.size_caches || cfg_.cache_capacity == 0) return;
  const sim::Time now = net_.now();
  struct Slot {
    QueryCache* cache;
    std::uint64_t scans;
  };
  std::vector<Slot> slots;
  std::uint64_t total_scans = 0;
  for (auto& [ep, ps] : peers_) {
    for (auto& [u, cache] : ps.caches) {
      const std::uint64_t n = popularity_.count(now, u);
      slots.push_back(Slot{&cache, n});
      total_scans += n;
    }
  }
  if (slots.empty()) return;
  if (total_scans == 0) {
    // No popularity signal: fall back to the uniform configured size.
    for (const Slot& s : slots) s.cache->set_capacity(cfg_.cache_capacity);
    return;
  }
  // Keep the total records budget constant: every cache gets the floor,
  // the remainder is split in proportion to windowed scan counts (floor
  // rounding, so the sum never exceeds the budget).
  const std::size_t floor_each =
      std::min(cfg_.hot.min_cache_records, cfg_.cache_capacity);
  const std::size_t budget = cfg_.cache_capacity * slots.size();
  const std::size_t spare = budget - floor_each * slots.size();
  for (const Slot& s : slots) {
    const std::size_t cap =
        floor_each +
        static_cast<std::size_t>(static_cast<double>(spare) *
                                 static_cast<double>(s.scans) /
                                 static_cast<double>(total_scans));
    s.cache->set_capacity(cap);
  }
}

OverlayIndex::HotCellStats OverlayIndex::hot_cell_stats() const {
  HotCellStats s;
  s.replicated_cells = replicas_.size();
  for (const auto& [u, rs] : replicas_)
    for (const sim::EndpointId h : rs.holders)
      if (net_.is_registered(h)) ++s.replica_holders;
  s.promotions = replica_promotions_;
  s.demotions = replica_demotions_;
  s.spread_visits = replica_spread_visits_;
  s.entries_copied = replica_entries_copied_;
  return s;
}

const IndexTable* OverlayIndex::table_of(cube::CubeId u) const {
  const auto pit = peers_.find(peer_of(u));
  if (pit == peers_.end()) return nullptr;
  const auto tit = pit->second.tables.find(u);
  return tit == pit->second.tables.end() ? nullptr : &tit->second;
}

std::vector<std::size_t> OverlayIndex::loads_by_cube_node() const {
  std::vector<std::size_t> loads(cube_.node_count(), 0);
  for (const auto& [ep, ps] : peers_)
    for (const auto& [u, table] : ps.tables)
      loads[static_cast<std::size_t>(u)] += table.object_count();
  return loads;
}

IndexTable::ScanStats OverlayIndex::scan_stats() const {
  IndexTable::ScanStats total;
  for (const auto& [ep, ps] : peers_)
    for (const auto& [u, table] : ps.tables) {
      const IndexTable::ScanStats& s = table.scan_stats();
      total.scans += s.scans;
      total.candidates += s.candidates;
      total.signature_rejects += s.signature_rejects;
      total.subset_checks += s.subset_checks;
      total.matches += s.matches;
      total.linear_equivalent += s.linear_equivalent;
    }
  return total;
}

void OverlayIndex::reset_scan_stats() const {
  for (const auto& [ep, ps] : peers_)
    for (const auto& [u, table] : ps.tables) table.reset_scan_stats();
}

}  // namespace hkws::index
