// The split-overlay deployment of the hypercube keyword index: the logical
// peers of ONE overlay divided across OS processes, each process owning the
// index tables of the cube nodes whose serving peer hashes into its slice.
//
// Where LogicalIndex holds every node in-process and OverlayIndex runs the
// protocol as closure-based messages inside one transport, PeerSlice speaks
// the real wire: every protocol step of docs/PROTOCOL.md (kws.insert,
// kws.t_query, kws.results, kws.t_cont/t_stop, kws.s_reply, kws.done) is a
// serialized frame routed through Transport::send_payload, so a step whose
// destination peer lives in another process crosses a socket, and a step
// whose destination is local loops through the same codec. The coordinator
// of a superset search is the process owning the root's serving peer; it
// mirrors LogicalIndex::search_top_down exactly — same visit order, same
// early termination, same per-step message accounting — and ships ONE final
// kws.s_reply with the hits assembled in visit order, so the hit sequence
// is byte-for-byte the LogicalIndex sequence no matter how peers are split
// or how replies interleave. (The reply itself is one extra message, the
// same accounting convention as OverlayIndex's done notification:
// stats.messages == LogicalIndex's count + 1.)
//
// Loss tolerance (the UDP backend, FaultTransport): every guarded step —
// publish/withdraw, pin, search initiation, each coordinator visit, the
// final reply — carries a retransmission timer (`step_timeout` ticks,
// `max_retries` attempts). Steps are idempotent: duplicate inserts are
// absorbed by IndexTable::add, re-scanned visits return identical results
// against a quiescent index, and the coordinator keeps finished replies
// as tombstones so a stale initiation retransmit re-sends the answer
// instead of re-running the search. Publishes are acknowledged (kws.done
// back to the publisher) — on a lossy wire, settle all publishes before
// querying.
//
// Threading: every public operation marshals onto the transport's dispatch
// strand (schedule_in(0)), where the payload handler and all timers also
// run — the protocol state needs no locks. Callbacks fire on the strand.
// Stop the transport before destroying the slice.
//
// Ownership is computed, not negotiated: peers 1..n_peers take ring
// positions from the salted-hash idiom of ChordNetwork, cube node u is
// served by the successor of mix64(u ^ ring_salt), and peer p lives in
// process rank (p-1) % procs. Every process derives the identical map from
// the shared Config, so there is no membership traffic to bootstrap.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/keyword.hpp"
#include "cube/hypercube.hpp"
#include "dht/node_id.hpp"
#include "index/index_table.hpp"
#include "index/keyword_hash.hpp"
#include "index/search_types.hpp"
#include "net/transport.hpp"

namespace hkws::index {

class PeerSlice {
 public:
  struct Config {
    int r = 8;  ///< hypercube dimension
    std::uint64_t hash_seed = seeds::kKeywordHash;
    std::uint64_t ring_salt = seeds::kCubeToDht;  ///< cube node -> ring key
    int ring_bits = 32;
    std::uint64_t node_seed = 42;  ///< peer endpoint -> ring position
    net::EndpointId n_peers = 4;   ///< total peers, endpoints 1..n_peers
    int procs = 1;                 ///< processes sharing the overlay
    int rank = 0;                  ///< this process's slice (0-based)
    /// Retransmission timeout per guarded protocol step, in transport
    /// ticks. 0 disables retransmission (reliable wire: sim, TCP).
    net::Time step_timeout = 0;
    int max_retries = 3;  ///< resends before a step is declared failed
  };

  using SearchCallback = std::function<void(SearchResult)>;
  /// Publish/withdraw acknowledgment (the owner applied the entry).
  using AckCallback = std::function<void()>;

  /// Registers this rank's peer endpoints on `net` and installs the
  /// transport's payload handler (one slice per transport). Addresses of
  /// the other ranks' endpoints are the harness's business:
  /// net.set_peer_address(ep, ...) for every ep with rank_of(ep) != rank.
  PeerSlice(net::Transport& net, Config cfg);
  ~PeerSlice();

  PeerSlice(const PeerSlice&) = delete;
  PeerSlice& operator=(const PeerSlice&) = delete;

  // --- Deterministic ownership map (identical in every process) ----------

  /// The peer endpoint serving cube node `u` (ring successor).
  net::EndpointId peer_of(cube::CubeId u) const;

  /// The process rank owning peer endpoint `ep`.
  int rank_of(net::EndpointId ep) const {
    return static_cast<int>((ep - 1) % static_cast<net::EndpointId>(cfg_.procs));
  }

  bool local_peer(net::EndpointId ep) const { return rank_of(ep) == cfg_.rank; }

  /// The endpoint this slice publishes and searches from (its first peer).
  net::EndpointId home() const noexcept { return home_; }

  const Config& config() const noexcept { return cfg_; }
  const cube::Hypercube& cube() const noexcept { return cube_; }
  const KeywordHasher& hasher() const noexcept { return hasher_; }

  // --- Object maintenance (paper §3.5, acknowledged) ----------------------

  /// Indexes `object` at F_h(keywords)'s serving peer; `acked` fires on the
  /// dispatch strand once the owner confirms (kws.done). Empty keyword
  /// sets are rejected, matching LogicalIndex.
  void publish(ObjectId object, const KeywordSet& keywords,
               AckCallback acked = {});
  void withdraw(ObjectId object, const KeywordSet& keywords,
                AckCallback acked = {});

  // --- Search -------------------------------------------------------------

  /// Pin search: objects indexed under exactly `keywords`. Stats match
  /// LogicalIndex::pin_search (1 node, 2 messages, 1 round).
  void pin_search(const KeywordSet& keywords, SearchCallback done);

  /// Superset search, top-down sequential (the paper's main algorithm).
  /// Hits and nodes_contacted/rounds/complete match LogicalIndex
  /// byte-for-byte; messages is LogicalIndex's count + 1 (the final reply,
  /// OverlayIndex's convention).
  void superset_search(const KeywordSet& query, std::size_t threshold,
                       SearchCallback done);

  // --- Introspection (call only when the transport is quiescent) ----------

  /// <K, object> pairs held by this process's slice of the index.
  std::size_t local_object_count() const;

  /// Cube nodes with a non-empty local table.
  std::size_t local_table_count() const;

 private:
  // Retransmittable client-side step: the frame to resend plus its timer.
  struct PendingStep {
    net::EndpointId to = 0;
    net::MsgKind kind = net::MsgKind::kOpaque;
    net::WireMessage msg;
    net::Transport::TimerId timer = 0;
    int retries = 0;
    std::size_t retransmits = 0;
  };
  struct PendingAck : PendingStep {
    AckCallback cb;
  };
  struct PendingSearch : PendingStep {
    SearchCallback cb;
  };

  /// One superset search being coordinated by this process (it owns the
  /// root's serving peer). Mirrors LogicalIndex::search_top_down state.
  struct Coordination {
    KeywordSet query;
    cube::CubeId root = 0;
    std::size_t threshold = 0;       ///< 0 = all of O_K
    net::EndpointId searcher = 0;    ///< reply target
    net::EndpointId self = 0;        ///< the root's serving peer (reply from)
    std::vector<Hit> hits;           ///< assembled in visit order
    SearchStats stats;
    bool stopped_early = false;
    std::deque<std::pair<cube::CubeId, int>> queue;  ///< (node, dim) pairs
    // The in-flight sequential visit.
    bool visiting = false;
    cube::CubeId visit_node = 0;
    int visit_dim = 0;
    std::uint64_t visit_want = 0;  ///< room shipped in the query (0 = all)
    bool have_control = false;
    bool control_stop = false;
    std::uint64_t control_count = 0;
    bool have_results = false;
    std::vector<Hit> results;
    net::Transport::TimerId timer = 0;
    int retries = 0;
  };

  /// A finished search kept as a tombstone until (and after) the searcher
  /// acks, so stale initiation retransmits re-send the answer instead of
  /// re-running the traversal.
  struct DoneReply {
    net::SearchReplyMsg reply;
    net::EndpointId searcher = 0;
    net::EndpointId self = 0;
    net::Transport::TimerId timer = 0;
    int retries = 0;
    bool acked = false;
  };

  /// Request ids embed the issuing endpoint so they never collide across
  /// processes (every process numbers from 1).
  std::uint64_t fresh_id() { return (home_ << 40) | next_id_++; }

  void on_payload(net::EndpointId from, net::EndpointId to, net::MsgKind kind,
                  const net::WireMessage& msg);

  void start_entry(net::MsgKind kind, ObjectId object,
                   const KeywordSet& keywords, AckCallback acked);

  // Server side (owner of the addressed table).
  void on_entry(net::EndpointId to, net::MsgKind kind, const net::EntryMsg& m);
  void on_pin(net::EndpointId to, const net::PinMsg& m);
  void on_query(net::EndpointId to, const net::QueryMsg& m);
  void serve_visit(net::EndpointId to, const net::QueryMsg& m);

  // Coordinator side.
  void start_coordination(net::EndpointId to, const net::QueryMsg& m);
  void advance(std::uint64_t id);
  void send_visit(std::uint64_t id, Coordination& c);
  void try_complete_step(std::uint64_t id, Coordination& c);
  void on_results(const net::HitsMsg& m);
  void on_control(const net::ControlMsg& m);
  void on_visit_timeout(std::uint64_t id);
  void finish(std::uint64_t id, bool failed);
  void send_reply(std::uint64_t id, DoneReply& d);
  void on_reply_timeout(std::uint64_t id);

  // Client side.
  void on_pin_reply(const net::HitsMsg& m);
  void on_search_reply(net::EndpointId from, net::EndpointId to,
                       const net::SearchReplyMsg& m);
  void on_done(const net::DoneMsg& m);
  void on_ack_timeout(std::uint64_t id);
  void on_pin_timeout(std::uint64_t id);
  void on_search_timeout(std::uint64_t id);

  /// Appends up to `room` superset matches of `query` from node `u`'s
  /// local table (kUnlimited = all), LogicalIndex::collect_at's order.
  std::size_t collect_local(cube::CubeId u, const KeywordSet& query,
                            std::size_t room, std::vector<Hit>& out) const;

  /// Arms `slot` to fire `fn` after `delay` ticks; no-op (slot = 0) when
  /// retransmission is disabled (step_timeout == 0).
  void arm(net::Transport::TimerId& slot, net::Time delay,
           std::function<void()> fn);

  net::Transport& net_;
  Config cfg_;
  cube::Hypercube cube_;
  KeywordHasher hasher_;
  dht::RingSpace space_;
  std::vector<std::pair<dht::RingId, net::EndpointId>> ring_;  ///< sorted
  net::EndpointId home_ = 0;
  std::uint64_t next_id_ = 1;

  /// Tables of the cube nodes served by this process's peers, lazily
  /// materialized (the cube is sparse per slice).
  std::unordered_map<cube::CubeId, IndexTable> tables_;

  std::unordered_map<std::uint64_t, PendingAck> pubs_;
  std::unordered_map<std::uint64_t, PendingSearch> pins_;
  std::unordered_map<std::uint64_t, PendingSearch> searches_;
  std::unordered_map<std::uint64_t, Coordination> coords_;
  std::unordered_map<std::uint64_t, DoneReply> done_replies_;
};

}  // namespace hkws::index
