#include "index/logical_index.hpp"

#include <limits>
#include <numeric>
#include <stdexcept>

namespace hkws::index {

namespace {
constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

std::size_t room_left(std::size_t threshold, std::size_t have) {
  if (threshold == 0) return kUnlimited;
  return threshold > have ? threshold - have : 0;
}

std::uint64_t total_count(const CachedTraversal& c) {
  std::uint64_t total = 0;
  for (const auto& [node, count] : c.contributors) total += count;
  return total;
}
}  // namespace

LogicalIndex::LogicalIndex(Config cfg)
    : cfg_(cfg), cube_(cfg.r), hasher_(cfg.r, cfg.hash_seed) {
  if (cfg.r > 24)
    throw std::invalid_argument(
        "LogicalIndex: materializing 2^r node tables beyond r = 24 is not "
        "sensible; use the distributed deployment for sparser spaces");
  tables_.resize(cube_.node_count());
  if (cfg_.cache_capacity != 0) {
    caches_.reserve(cube_.node_count());
    for (std::uint64_t i = 0; i < cube_.node_count(); ++i)
      caches_.emplace_back(cfg_.cache_capacity);
  }
}

void LogicalIndex::insert(ObjectId object, const KeywordSet& keywords) {
  if (keywords.empty())
    throw std::invalid_argument("LogicalIndex::insert: empty keyword set");
  const cube::CubeId u = hasher_.responsible_node(keywords);
  if (tables_[static_cast<std::size_t>(u)].add(keywords, object)) {
    ++objects_;
    ++mutation_epoch_;
  }
  if (!caches_.empty()) {
    // Eagerly drop cached traversals rooted *here* whose query the new
    // entry matches; traversals rooted at ancestor nodes are caught lazily
    // by the epoch check in lookup.
    caches_[static_cast<std::size_t>(u)].erase_if(
        [&](const KeywordSet& q) { return q.subset_of(keywords); });
  }
}

bool LogicalIndex::remove(ObjectId object, const KeywordSet& keywords) {
  const cube::CubeId u = hasher_.responsible_node(keywords);
  const bool removed = tables_[static_cast<std::size_t>(u)].remove(keywords, object);
  if (removed) {
    --objects_;
    ++mutation_epoch_;
    if (!caches_.empty()) {
      caches_[static_cast<std::size_t>(u)].erase_if(
          [&](const KeywordSet& q) { return q.subset_of(keywords); });
    }
  }
  return removed;
}

SearchResult LogicalIndex::pin_search(const KeywordSet& keywords) const {
  // One query message to F_h(K), one reply with the matching IDs (§3.5).
  SearchResult result;
  const cube::CubeId u = hasher_.responsible_node(keywords);
  for (ObjectId o : tables_[static_cast<std::size_t>(u)].exact(keywords))
    result.hits.push_back(Hit{o, keywords});
  result.stats.nodes_contacted = 1;
  result.stats.messages = 2;
  result.stats.rounds = 1;
  result.stats.complete = true;
  return result;
}

std::size_t LogicalIndex::collect_at(cube::CubeId u, const KeywordSet& query,
                                     std::size_t room,
                                     std::vector<Hit>& out) const {
  if (room == 0) return 0;
  std::size_t appended = 0;
  tables_[static_cast<std::size_t>(u)].for_each_superset(
      query, [&](const KeywordSet& k, const std::set<ObjectId>& objects) {
        for (ObjectId o : objects) {
          if (appended >= room) return false;
          out.push_back(Hit{o, k});
          ++appended;
        }
        return appended < room;
      });
  return appended;
}

SearchResult LogicalIndex::superset_search(const KeywordSet& query,
                                           std::size_t threshold,
                                           SearchStrategy strategy) {
  if (query.empty())
    throw std::invalid_argument("superset_search: empty query");
  const cube::CubeId root = hasher_.responsible_node(query);

  if (!caches_.empty()) {
    if (const CachedTraversal* cached =
            caches_[static_cast<std::size_t>(root)].lookup(query,
                                                           mutation_epoch_)) {
      // A cached plan is usable if it is exhaustive, or if it already
      // holds at least as many results as this query needs.
      if (cached->complete ||
          (threshold != 0 && total_count(*cached) >= threshold)) {
        return serve_from_cache(root, query, threshold, *cached);
      }
    }
  }

  SearchResult result;
  switch (strategy) {
    case SearchStrategy::kTopDownSequential:
      result = search_top_down(root, query, threshold);
      break;
    case SearchStrategy::kBottomUpSequential:
      result = search_bottom_up(root, query, threshold);
      break;
    case SearchStrategy::kLevelParallel:
      result = search_level_parallel(root, query, threshold);
      break;
  }
  return result;
}

SearchResult LogicalIndex::search_top_down(cube::CubeId root,
                                           const KeywordSet& query,
                                           std::size_t threshold) {
  SearchResult result;
  SearchStats& st = result.stats;
  CachedTraversal summary;

  st.nodes_contacted = 1;  // the root
  st.messages = 1;         // T_QUERY from the searcher to the root

  // Root examines its own table first.
  const std::size_t at_root = collect_at(
      root, query, room_left(threshold, result.hits.size()), result.hits);
  if (at_root > 0) {
    st.messages += 1;  // results sent directly to the searcher
    summary.contributors.emplace_back(root,
                                      static_cast<std::uint32_t>(at_root));
  }

  // The queue U of (node, dimension-index) pairs (paper §3.3), seeded with
  // the root's neighbors along each zero dimension.
  std::deque<std::pair<cube::CubeId, int>> queue;
  const bool done_at_root =
      threshold != 0 && result.hits.size() >= threshold;
  if (!done_at_root) {
    for (int i : cube_.zero_positions(root))
      queue.emplace_back(root | (1ULL << i), i);
  }

  // When the threshold is met at the root itself the rest of the subcube
  // is left unexplored; the result is complete only for a trivial subcube.
  bool stopped_early = done_at_root && cube_.subcube_size(root) > 1;
  while (!queue.empty()) {
    const auto [w, d] = queue.front();
    queue.pop_front();
    ++st.rounds;
    ++st.nodes_contacted;
    ++st.messages;  // T_QUERY(v -> w)

    const std::size_t c1 = collect_at(
        w, query, room_left(threshold, result.hits.size()), result.hits);
    if (c1 > 0) {
      st.messages += 1;  // results (w -> searcher)
      summary.contributors.emplace_back(w, static_cast<std::uint32_t>(c1));
    }

    if (threshold != 0 && result.hits.size() >= threshold) {
      st.messages += 1;  // T_STOP(w -> v)
      stopped_early = !queue.empty();
      break;
    }
    st.messages += 1;  // T_CONT(w -> v)
    for (int i : cube_.zero_positions(w)) {
      if (i >= d) break;  // zero_positions is ascending
      queue.emplace_back(w | (1ULL << i), i);
    }
  }

  st.complete = !stopped_early;
  summary.complete = st.complete;
  if (!caches_.empty())
    caches_[static_cast<std::size_t>(root)].insert(query, std::move(summary),
                                                   mutation_epoch_);
  return result;
}

SearchResult LogicalIndex::search_bottom_up(cube::CubeId root,
                                            const KeywordSet& query,
                                            std::size_t threshold) {
  SearchResult result;
  SearchStats& st = result.stats;
  CachedTraversal summary;

  st.nodes_contacted = 1;  // the root coordinates
  st.messages = 1;         // T_QUERY from the searcher to the root

  const cube::SpanningBinomialTree sbt(cube_, root);
  const auto order = sbt.bottom_up_order();  // deepest first, root last
  bool stopped_early = false;
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const cube::CubeId w = order[idx];
    if (w != root) {
      ++st.rounds;
      ++st.nodes_contacted;
      st.messages += 2;  // B_QUERY(v -> w) and its B_CONT/B_STOP reply
    }
    const std::size_t c1 = collect_at(
        w, query, room_left(threshold, result.hits.size()), result.hits);
    if (c1 > 0) {
      st.messages += 1;  // results to the searcher
      summary.contributors.emplace_back(w, static_cast<std::uint32_t>(c1));
    }
    if (threshold != 0 && result.hits.size() >= threshold) {
      stopped_early = idx + 1 < order.size();
      break;
    }
  }

  st.complete = !stopped_early;
  summary.complete = st.complete;
  if (!caches_.empty())
    caches_[static_cast<std::size_t>(root)].insert(query, std::move(summary),
                                                   mutation_epoch_);
  return result;
}

SearchResult LogicalIndex::search_level_parallel(cube::CubeId root,
                                                 const KeywordSet& query,
                                                 std::size_t threshold) {
  SearchResult result;
  SearchStats& st = result.stats;
  CachedTraversal summary;

  const cube::SpanningBinomialTree sbt(cube_, root);
  const auto levels = sbt.levels();
  st.messages = 1;  // searcher -> root
  bool stopped_early = false;
  for (std::size_t depth = 0; depth < levels.size(); ++depth) {
    ++st.levels;
    ++st.rounds;
    for (cube::CubeId w : levels[depth]) {
      ++st.nodes_contacted;
      if (w != root) ++st.messages;  // T_QUERY forwarded along a tree edge
      const std::size_t c1 = collect_at(
          w, query, room_left(threshold, result.hits.size()), result.hits);
      if (c1 > 0) {
        st.messages += 1;  // results to the searcher
        summary.contributors.emplace_back(w, static_cast<std::uint32_t>(c1));
      }
    }
    // Early termination can only happen at a level boundary: the whole
    // level was already queried in parallel.
    if (threshold != 0 && result.hits.size() >= threshold) {
      stopped_early = depth + 1 < levels.size();
      break;
    }
  }

  st.complete = !stopped_early;
  summary.complete = st.complete;
  if (!caches_.empty())
    caches_[static_cast<std::size_t>(root)].insert(query, std::move(summary),
                                                   mutation_epoch_);
  return result;
}

SearchResult LogicalIndex::serve_from_cache(cube::CubeId root,
                                            const KeywordSet& query,
                                            std::size_t threshold,
                                            const CachedTraversal& cached) {
  SearchResult result;
  SearchStats& st = result.stats;
  st.cache_hit = true;
  st.nodes_contacted = 1;  // the root
  st.messages = 1;         // searcher -> root

  bool stopped_early = false;
  for (std::size_t i = 0; i < cached.contributors.size(); ++i) {
    const cube::CubeId w = cached.contributors[i].first;
    if (w != root) {
      ++st.rounds;
      ++st.nodes_contacted;
      ++st.messages;  // T_QUERY directly to the known contributor
    }
    const std::size_t c1 = collect_at(
        w, query, room_left(threshold, result.hits.size()), result.hits);
    if (c1 > 0) st.messages += 1;  // results to the searcher
    if (threshold != 0 && result.hits.size() >= threshold) {
      stopped_early = i + 1 < cached.contributors.size();
      break;
    }
  }
  st.complete = cached.complete && !stopped_early;
  return result;
}

std::uint64_t LogicalIndex::TraversalProfile::nodes_to_collect(
    std::uint64_t target_hits) const {
  if (target_hits == 0 || target_hits > total_hits) return total_nodes;
  std::uint64_t acc = 0;
  for (const Contributor& c : contributors) {
    acc += c.count;
    if (acc >= target_hits) return c.position + 1;
  }
  return total_nodes;
}

LogicalIndex::TraversalProfile LogicalIndex::traversal_profile(
    const KeywordSet& query) const {
  TraversalProfile profile;
  profile.root = hasher_.responsible_node(query);
  profile.total_nodes = cube_.subcube_size(profile.root);
  const cube::SpanningBinomialTree sbt(cube_, profile.root);
  std::uint64_t position = 0;
  for (cube::CubeId w : sbt.bfs_order()) {
    std::uint32_t count = 0;
    tables_[static_cast<std::size_t>(w)].for_each_superset(
        query, [&](const KeywordSet&, const std::set<ObjectId>& objects) {
          count += static_cast<std::uint32_t>(objects.size());
          return true;
        });
    if (count > 0) {
      profile.contributors.push_back({position, w, count});
      profile.total_hits += count;
    }
    ++position;
  }
  return profile;
}

std::vector<std::size_t> LogicalIndex::loads() const {
  std::vector<std::size_t> out(tables_.size());
  for (std::size_t i = 0; i < tables_.size(); ++i)
    out[i] = tables_[i].object_count();
  return out;
}

LogicalIndex::CacheStats LogicalIndex::cache_stats() const {
  CacheStats s;
  for (const auto& c : caches_) {
    s.hits += c.hits();
    s.misses += c.misses();
    s.evictions += c.evictions();
    s.stale += c.stale_hits();
  }
  return s;
}

void LogicalIndex::clear_caches() {
  for (auto& c : caches_) c.clear();
}

// --- Cumulative session ----------------------------------------------------

LogicalIndex::CumulativeSession::CumulativeSession(LogicalIndex& owner,
                                                   KeywordSet query)
    : owner_(owner), query_(std::move(query)) {
  const cube::CubeId root = owner_.hasher_.responsible_node(query_);
  order_ = cube::SpanningBinomialTree(owner_.cube_, root).bfs_order();
}

SearchResult LogicalIndex::CumulativeSession::next(std::size_t count) {
  if (count == 0)
    throw std::invalid_argument("CumulativeSession::next: count must be > 0");
  SearchResult result;
  SearchStats& st = result.stats;
  st.messages = 1;  // searcher -> root (session continuation request)
  st.nodes_contacted = 1;

  while (pos_ < order_.size() && result.hits.size() < count) {
    const cube::CubeId w = order_[pos_];
    // Collect the node's full match list, then take the unreturned tail.
    std::vector<Hit> node_hits;
    owner_.collect_at(w, query_, kUnlimited, node_hits);
    if (w != order_.front()) {
      ++st.nodes_contacted;
      st.messages += 2;  // T_QUERY + T_CONT/T_STOP
      ++st.rounds;
    }
    std::size_t taken = 0;
    for (std::size_t i = offset_; i < node_hits.size(); ++i) {
      if (result.hits.size() >= count) break;
      result.hits.push_back(node_hits[i]);
      ++taken;
    }
    if (taken > 0) st.messages += 1;  // results to the searcher
    if (offset_ + taken >= node_hits.size()) {
      ++pos_;
      offset_ = 0;
    } else {
      offset_ += taken;
    }
  }
  st.complete = pos_ >= order_.size();
  return result;
}

}  // namespace hkws::index
