// KeywordSearchService — the application-facing facade of the keyword/
// attribute search layer (the box the paper's Fig. 2 inserts between the
// application and the P2P overlay). It owns the DOLR and the (optionally
// mirrored) hypercube index over any dht::Overlay, and packages the common
// application flows:
//
//   publish / withdraw    object lifecycle (references + index entries)
//   pin                   exact keyword-set lookup
//   search                superset search with ranking, refinement
//                         suggestions, and query-expansion advice
//   browse                cumulative paging (root keeps the queue)
//   resolve               object id -> replica holders (DOLR read)
//   repair                churn maintenance for all owned state
//
// Everything is asynchronous over the simulated network; callbacks fire as
// simulation events.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "dht/dolr.hpp"
#include "index/mirrored.hpp"
#include "index/overlay_index.hpp"
#include "index/ranking.hpp"

namespace hkws::index {

class KeywordSearchService {
 public:
  struct Options {
    int r = 10;                      ///< hypercube dimension
    int replication_factor = 2;     ///< DOLR reference replicas
    bool mirror_index = false;      ///< secondary hypercube (§3.4)
    std::size_t cache_capacity = 32;  ///< per-node query-cache records
    std::uint64_t hash_seed = seeds::kKeywordHash;
    /// Retransmission timeout per protocol step (0 = loss recovery off).
    sim::Time step_timeout = 0;
    /// Retransmissions allowed per step before the search fails.
    int max_retries = 3;
    /// Degraded-mode serving: consecutive step timeouts before a search
    /// fails over to the surrogate owner (see OverlayIndex::Config).
    /// 0 = off.
    int failover_after = 0;
    /// Windowed-metrics sink for mirror-failover observability (optional;
    /// not owned, must outlive the service).
    obs::WindowedMetrics* windows = nullptr;
    /// Popularity-aware hot-cell replication + cache sizing, forwarded to
    /// the primary cube (disabled by default; the mirror cube never
    /// replicates hot cells — its traffic share is already a failover
    /// artifact). See OverlayIndex::Config::HotCellConfig.
    OverlayIndex::Config::HotCellConfig hot_cells;
  };

  KeywordSearchService(dht::Overlay& overlay, Options options);

  // --- Object lifecycle ---------------------------------------------------

  void publish(sim::EndpointId peer, ObjectId object,
               const KeywordSet& keywords,
               OverlayIndex::PublishCallback done = nullptr);
  void withdraw(sim::EndpointId peer, ObjectId object,
                const KeywordSet& keywords,
                OverlayIndex::WithdrawCallback done = nullptr);

  // --- Search ----------------------------------------------------------------

  struct SearchOptions {
    std::size_t limit = 0;  ///< min(limit, |O_K|); 0 = everything
    SearchStrategy strategy = SearchStrategy::kTopDownSequential;
    RankingPreference order = RankingPreference::kGeneralFirst;
    /// Attach refinement suggestions (up to this many categories; 0 = off).
    std::size_t refinement_categories = 0;
    /// Attach a §3.4 query-expansion suggestion when one qualifies.
    bool suggest_expansion = false;
  };

  struct Answer {
    std::vector<Hit> hits;  ///< ranked per SearchOptions::order
    SearchStats stats;
    std::vector<RefinementSample> refinements;
    std::optional<KeywordSet> expansion;
  };
  using AnswerCallback = std::function<void(const Answer&)>;

  /// Exact-set lookup.
  void pin(sim::EndpointId searcher, const KeywordSet& keywords,
           AnswerCallback done);

  /// Superset search + ranking + optional refinement/expansion advice.
  /// Returns a ticket accepted by cancel_search() while in flight.
  std::uint64_t search(sim::EndpointId searcher, const KeywordSet& query,
                       const SearchOptions& options, AnswerCallback done);

  /// Abandons an in-flight search; its callback is never invoked. Returns
  /// false if the ticket already completed (or never existed).
  bool cancel_search(std::uint64_t ticket);

  // --- Browsing (cumulative search; primary cube only) ------------------------

  std::uint64_t open_browse(sim::EndpointId searcher, const KeywordSet& query);
  void browse_next(std::uint64_t session, std::size_t page_size,
                   AnswerCallback done);
  bool browse_done(std::uint64_t session) const;
  void close_browse(std::uint64_t session);

  // --- Object resolution / maintenance ------------------------------------------

  /// Resolves an object id to its replica holders (the DOLR Read).
  void resolve(sim::EndpointId reader, ObjectId object,
               dht::Dolr::ReadCallback done);

  /// Churn maintenance: drops dead peers' state, re-places misplaced index
  /// entries, restores reference replication. Returns entries moved.
  std::uint64_t repair();

  /// One rate-limited slice of the repair sweep, for the background
  /// maintenance plane: purges dead peers' state, then moves/copies at most
  /// `entry_budget` index entries (placement repair + mirror resync) and
  /// `ref_budget` replica copies. Returns total units of repair work done;
  /// 0 together with repair_backlog() == 0 means the service converged.
  std::uint64_t repair_step(std::size_t entry_budget, std::size_t ref_budget);

  /// Known outstanding repair work: misplaced index entries + entries one
  /// cube lost (mirrored only) + missing replica copies + out-of-sync
  /// hot-cell replicas.
  std::size_t repair_backlog() const;

  /// One rate-limited hot-cell replication round on the primary cube (see
  /// OverlayIndex::replication_step); the maintenance plane's replication
  /// ticker calls this. No-op returning 0 unless Options::hot_cells.enabled.
  std::uint64_t replication_step(std::size_t max_entries);

  /// Outstanding hot-cell replication work on the primary cube.
  std::size_t replication_backlog() const;

  // --- Escape hatches ---------------------------------------------------------

  dht::Dolr& dolr() noexcept { return dolr_; }
  OverlayIndex& primary_index();
  const OverlayIndex& primary_index() const;
  const Options& options() const noexcept { return options_; }

 private:
  Answer decorate(SearchResult result, const KeywordSet& query,
                  const SearchOptions& options) const;

  Options options_;
  dht::Dolr dolr_;
  std::unique_ptr<OverlayIndex> plain_;     // exactly one of these two
  std::unique_ptr<MirroredIndex> mirrored_;
};

}  // namespace hkws::index
