// Index replication via a secondary hypercube (paper §3.4: "replication can
// be done ... by building a secondary hypercube"). The mirror uses an
// independent keyword hash h' and an independent logical-to-physical map g',
// so the mirror entry of an object lives on a different peer than its
// primary entry with overwhelming probability; a single peer failure can
// therefore never silence a keyword set.
//
// Write path: the primary publish creates the DOLR reference and primary
// entry; the mirror entry rides one extra routed message. Read path:
// mirrored searches run the protocol on both cubes and union the results —
// roughly twice the cost, in exchange for single-fault tolerance of the
// index itself (reference replication is the DOLR's separate concern).
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>

#include "index/overlay_index.hpp"

namespace hkws::obs {
class WindowedMetrics;
}

namespace hkws::index {

class MirroredIndex {
 public:
  /// @param cfg  primary cube configuration; the mirror derives its own
  ///             hash seed and placement salt from it.
  MirroredIndex(dht::Dolr& dolr, OverlayIndex::Config cfg);

  /// Publishes the reference (DOLR) and, for first copies, both index
  /// entries. The callback reports the primary's result.
  void publish(sim::EndpointId publisher, ObjectId object,
               const KeywordSet& keywords,
               OverlayIndex::PublishCallback done = nullptr);

  /// Withdraws the copy; on last-copy removal both entries are deleted.
  void withdraw(sim::EndpointId publisher, ObjectId object,
                const KeywordSet& keywords,
                OverlayIndex::WithdrawCallback done = nullptr);

  /// Superset search over both cubes; hits are unioned by object id. The
  /// reported stats are the sums; `complete` holds if either traversal was
  /// complete (that is the availability win). Returns a ticket usable with
  /// cancel() while either traversal is still in flight.
  std::uint64_t superset_search(sim::EndpointId searcher,
                                const KeywordSet& query,
                                std::size_t threshold, SearchStrategy strategy,
                                OverlayIndex::SearchCallback done);

  /// Abandons both in-flight traversals of a superset search; the callback
  /// is never invoked. Returns false if the ticket already completed.
  bool cancel(std::uint64_t ticket);

  /// Pin search over both cubes, unioned.
  void pin_search(sim::EndpointId searcher, const KeywordSet& keywords,
                  OverlayIndex::SearchCallback done);

  /// Churn maintenance for both cubes.
  std::uint64_t repair_placement();
  std::uint64_t repair_placement(std::size_t max_entries);
  std::size_t misplaced_entries() const;
  void purge_dead();

  /// Anti-entropy between the cubes: for up to `max_entries` entries that
  /// one cube holds (at a live peer) and the other lost with a failed peer,
  /// issues a routed reindex into the missing side. Idempotent; repeated
  /// budgeted calls converge until both cubes index the same entry set.
  /// Returns reindex messages issued.
  std::uint64_t resync(std::size_t max_entries);

  /// Entries currently present in one cube but missing from the other —
  /// the mirror-resync backlog the maintenance plane drains.
  std::size_t resync_backlog() const;

  /// Failovers observed at merge time: searches where exactly one cube
  /// failed and the other served the query alone (primary-miss ->
  /// mirror-hit and vice versa). Cumulative; also counted into the
  /// "kws.mirror_failover" network metric and, when set_windows() was
  /// called, the "mirror.failover" windowed counter.
  std::uint64_t failover_count() const noexcept { return failovers_; }

  /// Installs a windowed-metrics sink for per-window failover observability
  /// (nullptr to remove; not owned, must outlive this object).
  void set_windows(obs::WindowedMetrics* windows) { windows_ = windows; }

  OverlayIndex& primary() noexcept { return *primary_; }
  OverlayIndex& mirror() noexcept { return *mirror_; }
  const OverlayIndex& primary() const noexcept { return *primary_; }
  const OverlayIndex& mirror() const noexcept { return *mirror_; }

 private:
  static OverlayIndex::Config mirror_config(OverlayIndex::Config cfg);
  /// Merges two finished results (union by object id, summed costs);
  /// detects and counts single-cube failovers.
  SearchResult merge(const SearchResult& a, const SearchResult& b);
  /// Entries `src` holds at live peers that `dst` does not index.
  static std::size_t missing_entries(const OverlayIndex& src,
                                     const OverlayIndex& dst);

  std::unique_ptr<OverlayIndex> primary_;
  std::unique_ptr<OverlayIndex> mirror_;
  obs::WindowedMetrics* windows_ = nullptr;
  std::uint64_t failovers_ = 0;
  /// In-flight superset tickets -> the two underlying request ids.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      active_;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace hkws::index
