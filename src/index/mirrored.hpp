// Index replication via a secondary hypercube (paper §3.4: "replication can
// be done ... by building a secondary hypercube"). The mirror uses an
// independent keyword hash h' and an independent logical-to-physical map g',
// so the mirror entry of an object lives on a different peer than its
// primary entry with overwhelming probability; a single peer failure can
// therefore never silence a keyword set.
//
// Write path: the primary publish creates the DOLR reference and primary
// entry; the mirror entry rides one extra routed message. Read path:
// mirrored searches run the protocol on both cubes and union the results —
// roughly twice the cost, in exchange for single-fault tolerance of the
// index itself (reference replication is the DOLR's separate concern).
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>

#include "index/overlay_index.hpp"

namespace hkws::index {

class MirroredIndex {
 public:
  /// @param cfg  primary cube configuration; the mirror derives its own
  ///             hash seed and placement salt from it.
  MirroredIndex(dht::Dolr& dolr, OverlayIndex::Config cfg);

  /// Publishes the reference (DOLR) and, for first copies, both index
  /// entries. The callback reports the primary's result.
  void publish(sim::EndpointId publisher, ObjectId object,
               const KeywordSet& keywords,
               OverlayIndex::PublishCallback done = nullptr);

  /// Withdraws the copy; on last-copy removal both entries are deleted.
  void withdraw(sim::EndpointId publisher, ObjectId object,
                const KeywordSet& keywords,
                OverlayIndex::WithdrawCallback done = nullptr);

  /// Superset search over both cubes; hits are unioned by object id. The
  /// reported stats are the sums; `complete` holds if either traversal was
  /// complete (that is the availability win). Returns a ticket usable with
  /// cancel() while either traversal is still in flight.
  std::uint64_t superset_search(sim::EndpointId searcher,
                                const KeywordSet& query,
                                std::size_t threshold, SearchStrategy strategy,
                                OverlayIndex::SearchCallback done);

  /// Abandons both in-flight traversals of a superset search; the callback
  /// is never invoked. Returns false if the ticket already completed.
  bool cancel(std::uint64_t ticket);

  /// Pin search over both cubes, unioned.
  void pin_search(sim::EndpointId searcher, const KeywordSet& keywords,
                  OverlayIndex::SearchCallback done);

  /// Churn maintenance for both cubes.
  std::uint64_t repair_placement();
  void purge_dead();

  OverlayIndex& primary() noexcept { return *primary_; }
  OverlayIndex& mirror() noexcept { return *mirror_; }

 private:
  static OverlayIndex::Config mirror_config(OverlayIndex::Config cfg);
  /// Merges two finished results (union by object id, summed costs).
  static SearchResult merge(const SearchResult& a, const SearchResult& b);

  std::unique_ptr<OverlayIndex> primary_;
  std::unique_ptr<OverlayIndex> mirror_;
  /// In-flight superset tickets -> the two underlying request ids.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      active_;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace hkws::index
