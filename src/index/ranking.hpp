// Ranking support (paper §1, §3.3): superset-search hits carry the full
// keyword set they are indexed under, so they can be grouped by how many
// *extra* keywords they have beyond the query (their SBT depth), ordered
// general-first or specific-first, and sampled per extra-keyword category to
// suggest query refinements — all without any global knowledge.
#pragma once

#include <cstddef>
#include <optional>
#include <map>
#include <vector>

#include "common/keyword.hpp"
#include "index/index_table.hpp"

namespace hkws::index {

enum class RankingPreference {
  kGeneralFirst,   ///< fewer extra keywords first (top-down order)
  kSpecificFirst,  ///< more extra keywords first (bottom-up order)
};

/// Groups hits by extra-keyword count |K_hit| - |query|.
/// Precondition: every hit's keyword set contains `query`.
std::map<std::size_t, std::vector<Hit>> group_by_extra(
    const std::vector<Hit>& hits, const KeywordSet& query);

/// Stable-sorts hits by extra-keyword count according to `pref`; ties keep
/// their traversal order (which already clusters equal keyword sets).
void order_hits(std::vector<Hit>& hits, const KeywordSet& query,
                RankingPreference pref);

/// One refinement suggestion: the extra keywords of a category and up to
/// `per_category` sample objects from it.
struct RefinementSample {
  KeywordSet extra;                ///< keywords beyond the query
  std::vector<ObjectId> samples;   ///< example objects in the category
  std::size_t category_size = 0;   ///< total hits in the category
};

/// Samples the hit list per distinct extra-keyword set (paper §1: "return
/// these sample objects along with their extra keyword(s) to help users
/// refine their queries"). Categories are emitted smallest-extra-set first,
/// at most `max_categories` of them (0 = all).
std::vector<RefinementSample> sample_refinements(
    const std::vector<Hit>& hits, const KeywordSet& query,
    std::size_t per_category, std::size_t max_categories = 0);

/// Query expansion (paper §3.4: "query expansion can be used to expand
/// keyword sets" to narrow hot queries): returns `query` plus the single
/// extra keyword that splits the result set most evenly — the expanded
/// query's subhypercube is half as large, and its result set is the chosen
/// keyword's category. Returns nullopt when no extra keyword covers at
/// least `min_share` of the hits (expansion would discard too much).
std::optional<KeywordSet> expand_query(const std::vector<Hit>& hits,
                                       const KeywordSet& query,
                                       double min_share = 0.25);

}  // namespace hkws::index
