#include "index/decomposed.hpp"

#include <stdexcept>

#include "common/hash.hpp"

namespace hkws::index {

DecomposedIndex::DecomposedIndex(std::vector<GroupSpec> groups,
                                 GroupFn group_fn, std::uint64_t hash_seed)
    : group_fn_(std::move(group_fn)) {
  if (groups.empty())
    throw std::invalid_argument("DecomposedIndex: need at least one group");
  cubes_.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    LogicalIndex::Config cfg;
    cfg.r = groups[g].r;
    // Independent keyword hash per group so the same keyword lands on
    // different dimensions in different cubes.
    cfg.hash_seed = hash_combine(hash_seed, g);
    cubes_.push_back(std::make_unique<LogicalIndex>(cfg));
  }
}

DecomposedIndex DecomposedIndex::hashed(std::size_t groups, int r,
                                        std::uint64_t hash_seed) {
  std::vector<GroupSpec> specs(groups, GroupSpec{r});
  return DecomposedIndex(
      std::move(specs),
      [groups, hash_seed](const Keyword& w) {
        return static_cast<std::size_t>(hash_bytes(w, hash_seed ^ 0x5eedULL) %
                                        groups);
      },
      hash_seed);
}

KeywordSet DecomposedIndex::projection(const KeywordSet& keywords,
                                       std::size_t g) const {
  std::vector<Keyword> words;
  for (const auto& w : keywords) {
    const std::size_t group = group_fn_(w);
    if (group >= cubes_.size())
      throw std::out_of_range("DecomposedIndex: group_fn returned " +
                              std::to_string(group) + " for keyword '" + w +
                              "' but there are only " +
                              std::to_string(cubes_.size()) + " groups");
    if (group == g) words.push_back(w);
  }
  return KeywordSet(std::move(words));
}

void DecomposedIndex::insert(ObjectId object, const KeywordSet& keywords) {
  if (keywords.empty())
    throw std::invalid_argument("DecomposedIndex::insert: empty keyword set");
  for (std::size_t g = 0; g < cubes_.size(); ++g) {
    const KeywordSet proj = projection(keywords, g);
    if (!proj.empty()) cubes_[g]->insert(object, proj);
  }
  full_sets_[object] = keywords;
}

bool DecomposedIndex::remove(ObjectId object, const KeywordSet& keywords) {
  bool removed = false;
  for (std::size_t g = 0; g < cubes_.size(); ++g) {
    const KeywordSet proj = projection(keywords, g);
    if (!proj.empty()) removed |= cubes_[g]->remove(object, proj);
  }
  if (removed) full_sets_.erase(object);
  return removed;
}

SearchResult DecomposedIndex::pin_search(const KeywordSet& keywords) {
  // Query the group holding the largest projection; verify candidates
  // against the full keyword set.
  std::size_t best = 0;
  KeywordSet best_proj;
  for (std::size_t g = 0; g < cubes_.size(); ++g) {
    KeywordSet proj = projection(keywords, g);
    if (proj.size() > best_proj.size()) {
      best = g;
      best_proj = std::move(proj);
    }
  }
  SearchResult raw = cubes_[best]->pin_search(best_proj);
  SearchResult out;
  out.stats = raw.stats;
  for (const Hit& h : raw.hits) {
    const auto it = full_sets_.find(h.object);
    if (it != full_sets_.end() && it->second == keywords)
      out.hits.push_back(Hit{h.object, it->second});
  }
  return out;
}

SearchResult DecomposedIndex::superset_search(const KeywordSet& query,
                                              std::size_t threshold,
                                              SearchStrategy strategy) {
  if (query.empty())
    throw std::invalid_argument("DecomposedIndex: empty query");
  std::size_t best = 0;
  KeywordSet best_proj;
  for (std::size_t g = 0; g < cubes_.size(); ++g) {
    KeywordSet proj = projection(query, g);
    if (proj.size() > best_proj.size()) {
      best = g;
      best_proj = std::move(proj);
    }
  }
  // Post-filtering may discard candidates, so the group cube must be
  // searched exhaustively; the threshold applies to the filtered stream.
  SearchResult raw = cubes_[best]->superset_search(best_proj, 0, strategy);
  SearchResult out;
  out.stats = raw.stats;
  for (const Hit& h : raw.hits) {
    if (threshold != 0 && out.hits.size() >= threshold) {
      out.stats.complete = false;
      break;
    }
    const auto it = full_sets_.find(h.object);
    if (it == full_sets_.end()) continue;
    if (query.subset_of(it->second))
      out.hits.push_back(Hit{h.object, it->second});
  }
  return out;
}

}  // namespace hkws::index
