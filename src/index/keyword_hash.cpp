#include "index/keyword_hash.hpp"

#include <stdexcept>

namespace hkws::index {

KeywordHasher::KeywordHasher(int r, std::uint64_t seed) : r_(r), seed_(seed) {
  if (r < 1 || r > 63)
    throw std::invalid_argument("KeywordHasher: r must be in [1,63]");
}

cube::CubeId KeywordHasher::responsible_node(const KeywordSet& keywords) const {
  cube::CubeId id = 0;
  for (const auto& w : keywords) id |= 1ULL << dim_of(w);
  return id;
}

}  // namespace hkws::index
