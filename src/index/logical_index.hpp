// The hypercube keyword index with every logical node held in-process.
//
// This is the reference implementation of the paper's index scheme (§3.3):
// it executes the very same traversals as the distributed protocol (same
// visit order, same early termination, same message accounting) but without
// simulated network delivery, so the large experiments (Figs. 6-9: 131k
// objects, up to 178k queries) run in milliseconds. The distributed version
// (OverlayIndex) runs the identical logic as real protocol messages over
// the Chord overlay; integration tests assert the two agree hit-for-hit and
// message-for-message.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/keyword.hpp"
#include "cube/hypercube.hpp"
#include "cube/sbt.hpp"
#include "index/index_table.hpp"
#include "index/keyword_hash.hpp"
#include "index/query_cache.hpp"
#include "index/search_types.hpp"

namespace hkws::index {

class LogicalIndex {
 public:
  struct Config {
    int r = 10;                      ///< hypercube dimension
    std::uint64_t hash_seed = seeds::kKeywordHash;
    std::size_t cache_capacity = 0;  ///< per-node cache records; 0 = off
  };

  explicit LogicalIndex(Config cfg);

  // --- Object maintenance (one node touched per op, paper §3.5) ---------

  /// Indexes `object` under its full keyword set at F_h(keywords).
  /// Empty keyword sets are rejected (no node would be responsible).
  void insert(ObjectId object, const KeywordSet& keywords);

  /// Removes the index entry <keywords, object>. Returns whether found.
  bool remove(ObjectId object, const KeywordSet& keywords);

  // --- Search ------------------------------------------------------------

  /// Pin search: objects whose keyword set is exactly `keywords`.
  SearchResult pin_search(const KeywordSet& keywords) const;

  /// Superset search: up to `threshold` objects describable by `query`
  /// (threshold 0 = all of O_K). See SearchStrategy for exploration order.
  SearchResult superset_search(const KeywordSet& query,
                               std::size_t threshold = 0,
                               SearchStrategy strategy =
                                   SearchStrategy::kTopDownSequential);

  /// Cumulative superset search (paper §2.2/§3.3): the root keeps the
  /// traversal queue, so consecutive next() calls return disjoint batches
  /// until the subhypercube is exhausted.
  class CumulativeSession {
   public:
    /// Fetches up to `count` further objects. Empty result = exhausted.
    SearchResult next(std::size_t count);
    bool exhausted() const noexcept { return pos_ >= order_.size(); }
    const KeywordSet& query() const noexcept { return query_; }

   private:
    friend class LogicalIndex;
    CumulativeSession(LogicalIndex& owner, KeywordSet query);
    LogicalIndex& owner_;
    KeywordSet query_;
    std::vector<cube::CubeId> order_;  // BFS order of the SBT
    std::size_t pos_ = 0;
    std::size_t offset_ = 0;  // results already returned from order_[pos_]
  };

  CumulativeSession begin_cumulative(const KeywordSet& query) {
    return CumulativeSession(*this, query);
  }

  /// A cost profile of the full top-down traversal for `query`, computed
  /// without touching the caches: where in the BFS visit order each
  /// contributing node sits and how many matches it holds. From this the
  /// experiment harnesses derive nodes-contacted at *any* recall rate or
  /// threshold (an early-stopped search is exactly a prefix of the full
  /// BFS), without re-running the traversal per recall point.
  struct TraversalProfile {
    cube::CubeId root = 0;
    std::uint64_t total_nodes = 0;  ///< subhypercube size (100%-recall cost)
    std::uint64_t total_hits = 0;   ///< |O_K|
    struct Contributor {
      std::uint64_t position;  ///< 0-based index in BFS visit order
      cube::CubeId node;
      std::uint32_t count;
    };
    std::vector<Contributor> contributors;  ///< in visit order

    /// Nodes contacted by a sequential top-down search stopping as soon as
    /// `target_hits` results are collected (0 or > total_hits: the whole
    /// subhypercube — the search cannot know it is done before exhausting it).
    std::uint64_t nodes_to_collect(std::uint64_t target_hits) const;
  };
  TraversalProfile traversal_profile(const KeywordSet& query) const;

  // --- Introspection (experiments, tests) --------------------------------

  const cube::Hypercube& cube() const noexcept { return cube_; }
  const KeywordHasher& hasher() const noexcept { return hasher_; }
  std::size_t object_count() const noexcept { return objects_; }

  const IndexTable& table_at(cube::CubeId u) const {
    return tables_[static_cast<std::size_t>(u)];
  }

  /// Index load (objects) per hypercube node, indexed by CubeId.
  std::vector<std::size_t> loads() const;

  /// Aggregate cache statistics over all nodes.
  struct CacheStats {
    std::uint64_t hits = 0, misses = 0, evictions = 0, stale = 0;
  };
  CacheStats cache_stats() const;
  void clear_caches();

 private:
  SearchResult search_top_down(cube::CubeId root, const KeywordSet& query,
                               std::size_t threshold);
  SearchResult search_bottom_up(cube::CubeId root, const KeywordSet& query,
                                std::size_t threshold);
  SearchResult search_level_parallel(cube::CubeId root,
                                     const KeywordSet& query,
                                     std::size_t threshold);
  /// Serves a query from a cached traversal summary (root already counted).
  SearchResult serve_from_cache(cube::CubeId root, const KeywordSet& query,
                                std::size_t threshold,
                                const CachedTraversal& cached);
  /// Collects matches at one node into `out`; returns #objects appended.
  std::size_t collect_at(cube::CubeId u, const KeywordSet& query,
                         std::size_t room, std::vector<Hit>& out) const;

  Config cfg_;
  cube::Hypercube cube_;
  KeywordHasher hasher_;
  std::vector<IndexTable> tables_;
  mutable std::vector<QueryCache> caches_;  // empty when caching disabled
  std::size_t objects_ = 0;
  /// Bumped on every successful insert/remove; cached traversals carry the
  /// epoch they were built under and are invalidated when it is older (the
  /// mutated node may be a descendant of the cached root, which the local
  /// erase_if above cannot see).
  std::uint64_t mutation_epoch_ = 0;
};

}  // namespace hkws::index
