// The distributed hypercube keyword-index layer (paper §3.3) running as a
// real message protocol over the Chord overlay and the DOLR reference
// service. Every logical hypercube node u is mapped by g onto the DHT peer
// owning ring key g(u); all index/search traffic travels as simulated
// network messages (T_QUERY, T_CONT, T_STOP, results, done), so hop and
// message counts come out of the network metrics, not a model.
//
// Protocol notes / adaptations (documented in DESIGN.md):
//  * The first time a coordinator needs to reach a hypercube node it routes
//    through the DHT (multi-hop); the resolved peer contact is cached, so
//    repeat traffic is direct — exactly the neighbor-contact caching the
//    paper recommends in §3.4.
//  * Result messages go directly from each contributing node to the
//    searcher (as in the paper); the final `done` notification carries the
//    number of result messages sent so the searcher can complete exactly
//    when everything has arrived regardless of message reordering.
//  * Co-host visit coalescing (Config::coalesce_visits): when a
//    level-parallel round would visit several logical cube nodes whose
//    g-mapping resolves to the same cached physical contact, the
//    coordinator merges them into one `kws.visit_batch` wire message. The
//    peer scans every co-hosted node, ships a single `kws.batch_results`
//    message carrying per-logical-node batches to the searcher, and one
//    `kws.batch_reply` control message to the coordinator (empty co-hosted
//    nodes ride along for free). Per-node step timers stay armed: a lost
//    batch falls back to individual retransmission, which replays each
//    node's memoized scan, so loss tolerance and surrogate failover are
//    unchanged. See docs/PERF.md.
//  * Hit assembly is deterministic: each node's result batch is buffered
//    by origin and concatenated in dispatch (visit) order at completion,
//    so the hit sequence is independent of message arrival order — and
//    byte-identical with coalescing on or off.
//  * Superset search optionally runs with loss-tolerant delivery: when
//    Config::step_timeout is set, every protocol step (root contact,
//    per-node T_QUERY, the T_CONT/T_STOP reply, result delivery, and the
//    final done notification) is guarded by a cancelable timer and
//    retransmitted up to Config::max_retries times. Retransmitted steps are
//    idempotent — each node memoizes its first scan per request and
//    replays the same batch, and the searcher deduplicates batches by
//    origin node — so a search over a lossy network returns exactly the
//    result set of the lossless run, or reports stats.failed when a step
//    exhausts its budget. Requests can also be cancelled mid-flight
//    (deadline abandonment): cancel() drops all coordinator state and
//    signals the root with a T_STOP.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/keyword.hpp"
#include "common/rng.hpp"
#include "cube/hypercube.hpp"
#include "cube/sbt.hpp"
#include "dht/dolr.hpp"
#include "index/hit_pool.hpp"
#include "index/index_table.hpp"
#include "index/keyword_hash.hpp"
#include "index/query_cache.hpp"
#include "index/search_types.hpp"
#include "net/transport.hpp"

namespace hkws::index {

class OverlayIndex {
 public:
  struct Config {
    int r = 8;
    std::uint64_t hash_seed = seeds::kKeywordHash;
    /// Salt of the logical-to-physical map g. A mirror index (secondary
    /// hypercube, §3.4) uses a different salt so its entries land on
    /// different peers than the primary's.
    std::uint64_t ring_salt = seeds::kCubeToDht;
    std::size_t cache_capacity = 0;  ///< per-node query-cache records; 0 = off
    bool cache_contacts = true;      ///< learn cube-node -> peer contacts
    /// Merge a level-parallel round's visits to co-hosted cube nodes (same
    /// cached live contact) into one VisitBatch wire message per peer.
    /// Needs cache_contacts; only cuts messages once contacts are warm.
    /// Results are byte-identical either way (see protocol notes above).
    bool coalesce_visits = true;
    /// Superset-search retransmission timeout in ticks; 0 disables loss
    /// tolerance (legacy behaviour: a lost message stalls the request until
    /// someone cancels it). Choose > the round-trip p99 to avoid spurious
    /// (harmless but costly) retransmits.
    sim::Time step_timeout = 0;
    /// Retransmissions per protocol step before the request is failed.
    int max_retries = 3;
    /// Retransmission backoff (partition-aware resend pacing): the k-th
    /// retransmit of a step waits min(step_timeout * 2^k, backoff_cap)
    /// plus a seeded jitter draw in [0, backoff_jitter] — during a
    /// partition the survivors stop hammering the cut at a fixed cadence,
    /// and the jitter de-synchronizes the retry thundering herd when it
    /// heals. The *first* arm of every step waits exactly step_timeout and
    /// draws no randomness, so fault-free runs are bit-identical to the
    /// legacy fixed resend. backoff_cap == 0 disables backoff entirely
    /// (legacy: every retransmit waits step_timeout).
    sim::Time backoff_cap = 0;
    sim::Time backoff_jitter = 0;   ///< jitter bound per backed-off resend
    std::uint64_t backoff_seed = 1; ///< seed of the jitter stream
    /// Degraded-mode serving: after this many consecutive timeouts on one
    /// protocol step, the coordinator re-resolves the root through the DHT
    /// and re-aims the request at the surrogate owner instead of burning
    /// the rest of the retransmit budget against a dead peer. Results that
    /// crossed a failover carry stats.degraded. Requires step_timeout != 0;
    /// 0 disables failover (legacy behaviour: retries then failure). Also
    /// gates the loss-guarded pin path.
    int failover_after = 0;
    /// Popularity-aware hot-cell replication (docs/ROBUSTNESS.md). Query
    /// traffic recreates load skew even though keyword-fusion placement
    /// balances storage: a few logical nodes absorb most T_QUERY scans.
    /// When enabled, replication_step() detects hot cube nodes from a
    /// sliding scan-count window, copies their IndexTables to `replicas`
    /// extra peers (the owner's DHT successor set), and the coordinator
    /// round-robins visits across owner + replicas. Replica tables are
    /// write-through (every index mutation applies to them immediately), so
    /// a replica's scan is byte-identical to the primary's. The same window
    /// drives popularity-proportional query-cache sizing.
    struct HotCellConfig {
      bool enabled = false;
      /// Replica holders per hot cell (extra copies beyond the owner).
      int replicas = 2;
      /// Sliding popularity-window width in ticks (two buckets: a scan
      /// counts for between one and two window widths).
      sim::Time window = 1000;
      /// Windowed scan count at which a cell qualifies as hot.
      std::uint64_t min_scans = 32;
      /// Most-scanned cells replicated per replication_step (cap on the
      /// replicated set, not per-call work — the budget handles that).
      std::size_t max_hot = 8;
      /// Re-target per-cell query-cache capacities in proportion to the
      /// popularity window (total records budget held constant).
      bool size_caches = true;
      /// Per-cache floor when size_caches redistributes capacity.
      std::size_t min_cache_records = 2;
    };
    HotCellConfig hot = {};
  };

  OverlayIndex(dht::Dolr& dolr, Config cfg);

  // --- Mapping ------------------------------------------------------------

  /// g(u): the ring key of logical hypercube node u.
  dht::RingId ring_key_of(cube::CubeId u) const;

  /// F_h(K).
  cube::CubeId responsible_node(const KeywordSet& keywords) const {
    return hasher_.responsible_node(keywords);
  }

  /// The peer currently playing hypercube node u (ownership oracle; used
  /// by experiments and tests, not by the protocol).
  sim::EndpointId peer_of(cube::CubeId u) const;

  // --- Object maintenance (paper Insert / Delete) --------------------------

  struct PublishResult {
    bool indexed = false;  ///< first copy: a keyword index entry was created
    int dolr_hops = 0;     ///< hops of the reference insert
    int index_hops = 0;    ///< hops of the index-entry insert (0 if !indexed)
  };
  using PublishCallback = std::function<void(const PublishResult&)>;

  /// Publishes a copy of `object` with keyword set `keywords` from
  /// `publisher`: places the reference via the DOLR; on the first copy,
  /// also inserts the index entry <keywords, object> at g(F_h(keywords)).
  void publish(sim::EndpointId publisher, ObjectId object,
               const KeywordSet& keywords, PublishCallback done = nullptr);

  struct WithdrawResult {
    bool index_removed = false;  ///< last copy: the index entry was deleted
  };
  using WithdrawCallback = std::function<void(const WithdrawResult&)>;

  /// Withdraws `publisher`'s copy; deletes the index entry when the last
  /// copy disappears.
  void withdraw(sim::EndpointId publisher, ObjectId object,
                const KeywordSet& keywords, WithdrawCallback done = nullptr);

  /// Repair/anti-entropy path: (re-)creates the index entry for an object
  /// whose references still exist but whose index entry was lost with a
  /// failed peer. Idempotent; one routed message. Also the building block
  /// for mirror (secondary-hypercube) indexing.
  void reindex(sim::EndpointId from, ObjectId object,
               const KeywordSet& keywords);

  /// Inverse of reindex: removes the index entry without touching the
  /// DOLR references. One routed message.
  void deindex(sim::EndpointId from, ObjectId object,
               const KeywordSet& keywords);

  // --- Search ---------------------------------------------------------------

  using SearchCallback = std::function<void(const SearchResult&)>;

  /// Pin search: one routed query to g(F_h(K)), one direct reply.
  void pin_search(sim::EndpointId searcher, const KeywordSet& keywords,
                  SearchCallback done);

  /// Superset search with the selected exploration strategy. Returns the
  /// request id, usable with cancel() while the search is in flight.
  std::uint64_t superset_search(sim::EndpointId searcher,
                                const KeywordSet& query,
                                std::size_t threshold, SearchStrategy strategy,
                                SearchCallback done);

  /// Abandons an in-flight superset search: coordinator state is dropped,
  /// the callback is never invoked, and (if the root was already located) a
  /// T_STOP message tells the root to stop exploring the subtree. Returns
  /// false if the request already completed or never existed. This is the
  /// deadline-enforcement hook of the serving engine.
  bool cancel(std::uint64_t request);

  /// Number of requests currently in flight (superset searches plus
  /// loss-guarded pins).
  std::size_t in_flight_requests() const noexcept {
    return requests_.size() + pins_.size();
  }

  // --- Tracing ---------------------------------------------------------------

  /// One protocol milestone of an in-flight request. Points currently
  /// emitted: "root" (a = root peer, b = route hops), "scan" (a = cube
  /// node, b = peer that served it), "level" (a = level index, b = width),
  /// "coalesce" (a = co-host peer, b = visits merged into the batch),
  /// "retransmit" (a = cube node or root cube), "failed" (budget
  /// exhausted), "spread" (a = cube node, b = replica holder serving the
  /// visit instead of the owner). See docs/ENGINE.md for the schema.
  struct Trace {
    std::uint64_t request = 0;
    const char* point = "";
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  using TraceFn = std::function<void(const Trace&)>;

  /// Installs a trace observer (nullptr to remove). Invoked synchronously
  /// from protocol event handlers; keep it cheap and non-reentrant.
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  // --- Cumulative superset search (paper §2.2/§3.3) --------------------------
  //
  // "Cumulative superset search can be easily implemented by letting the
  // root node keep the queue U for subsequent queries until the search has
  // completed." Consecutive next() calls on a session return disjoint
  // batches until the subhypercube is exhausted.

  /// Opens a browsing session. Cheap (no messages until the first next()).
  std::uint64_t open_cumulative(sim::EndpointId searcher,
                                const KeywordSet& query);

  /// Fetches up to `count` further results (count >= 1). The result's
  /// stats.complete is true once the subhypercube is exhausted.
  void cumulative_next(std::uint64_t session, std::size_t count,
                       SearchCallback done);

  /// Whether the session has returned everything.
  bool cumulative_exhausted(std::uint64_t session) const;

  /// Discards the session's root-side state.
  void close_cumulative(std::uint64_t session);

  // --- Maintenance after churn ---------------------------------------------

  /// Re-places index entries whose cube node is now owned by a different
  /// peer and flushes contact/query caches. Returns entries moved.
  std::uint64_t repair_placement();

  /// Incremental variant for the maintenance plane: moves at most
  /// `max_entries` individual <keywords, object> entries per call, so
  /// repair work is rate-limited and interleaves with serving traffic.
  /// Re-scans on every call, so repeated calls converge to zero misplaced
  /// entries. Caches are flushed only when something actually moved.
  std::uint64_t repair_placement(std::size_t max_entries);

  /// Entries at live peers whose cube node is owned by someone else — the
  /// placement-repair backlog.
  std::size_t misplaced_entries() const;

  /// Drops index state held for peers that are no longer live (their
  /// entries are lost until republished — the paper's fault model).
  void purge_dead();

  // --- Hot-cell replication (Config::hot) ------------------------------------

  /// One round of popularity-aware replication (no-op unless hot.enabled):
  /// refreshes the hot set from the popularity window, demotes cells that
  /// cooled off, restores primary entries lost with a dead owner from
  /// surviving replicas, promotes/resyncs hot cells to their replica
  /// holders (full-table copies, at most `max_entries` entries per call so
  /// the maintenance plane can rate-limit it), and re-targets query-cache
  /// capacities in proportion to popularity. Synchronous bookkeeping — no
  /// wire messages. Returns entries copied or restored this round.
  std::uint64_t replication_step(std::size_t max_entries);

  /// Outstanding replication work: entries a registered live holder should
  /// mirror but does not yet, plus primary entries recoverable from a
  /// replica but missing at the owner. Zero once replication_step has
  /// converged for the current hot set.
  std::size_t replication_backlog() const;

  /// Replication counters (see docs/OBSERVABILITY.md).
  struct HotCellStats {
    std::size_t replicated_cells = 0;   ///< cells currently replicated
    std::size_t replica_holders = 0;    ///< live (cell, holder) pairs
    std::uint64_t promotions = 0;       ///< cells promoted to hot
    std::uint64_t demotions = 0;        ///< cells demoted (cooled off)
    std::uint64_t spread_visits = 0;    ///< visits served by a replica
    std::uint64_t entries_copied = 0;   ///< entries copied or restored
  };
  HotCellStats hot_cell_stats() const;

  // --- Introspection ---------------------------------------------------------

  const cube::Hypercube& cube() const noexcept { return cube_; }
  const KeywordHasher& hasher() const noexcept { return hasher_; }
  dht::Dolr& dolr() noexcept { return dolr_; }
  const dht::Dolr& dolr() const noexcept { return dolr_; }

  /// Whether the canonical owner of F_h(keywords) currently indexes
  /// <keywords, object>. Global-knowledge check used by the mirror resync
  /// to find entries one cube lost with a failed peer.
  bool has_entry(const KeywordSet& keywords, ObjectId object) const;

  /// Invokes fn(cube_node, keywords, object, holder_endpoint) for every
  /// index entry stored anywhere (including entries still held for dead
  /// peers until purge_dead runs). Anti-entropy building block.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [ep, ps] : peers_)
      for (const auto& [u, table] : ps.tables)
        for (const auto& [k, objects] : table.entries())
          for (ObjectId o : objects) fn(u, k, o, ep);
  }

  /// Invokes fn(cube_node, keywords, object, holder_endpoint) for every
  /// *replica* index entry (hot-cell copies held beside the primaries).
  /// Together with for_each_entry this enumerates every copy of every
  /// entry anywhere — the survivor set a churn oracle must credit.
  template <typename Fn>
  void for_each_replica_entry(Fn&& fn) const {
    for (const auto& [ep, ps] : peers_)
      for (const auto& [u, table] : ps.replica_tables)
        for (const auto& [k, objects] : table.entries())
          for (ObjectId o : objects) fn(u, k, o, ep);
  }

  /// The index table of cube node u at its current owner (nullptr if the
  /// owner holds no entries for u).
  const IndexTable* table_of(cube::CubeId u) const;

  /// Objects indexed per cube node (placement snapshot across all peers).
  std::vector<std::size_t> loads_by_cube_node() const;

  /// Aggregate superset-scan work counters summed over every index table on
  /// every peer (see IndexTable::ScanStats); the search-cost benchmark uses
  /// the delta against `linear_equivalent` to price the signature index.
  IndexTable::ScanStats scan_stats() const;
  void reset_scan_stats() const;

  /// Global index mutation epoch: bumped whenever any index table gains or
  /// loses an entry (publish/withdraw/reindex/deindex/repair/purge). Query
  /// caches stamp entries with the epoch; a lookup under a newer epoch is a
  /// miss. Exposed for tests and the torture harness's oracles.
  std::uint64_t mutation_epoch() const noexcept { return mutation_epoch_; }

 private:
  struct PeerState {
    std::unordered_map<cube::CubeId, IndexTable> tables;
    std::unordered_map<cube::CubeId, QueryCache> caches;
    std::unordered_map<cube::CubeId, sim::EndpointId> contacts;
    /// Hot-cell replica copies held at this peer, keyed by cube node. Kept
    /// strictly apart from `tables` so placement accounting (misplaced
    /// entries, repair, occupancy, loads) never counts a copy twice.
    std::unordered_map<cube::CubeId, IndexTable> replica_tables;
  };

  /// Replication state of one hot cube node.
  struct ReplicaSet {
    std::vector<sim::EndpointId> holders;  ///< replica peers (never the owner)
    std::size_t rr = 0;                    ///< round-robin spread cursor
  };

  /// Two-bucket sliding scan-count window: a scan stays visible for
  /// between one and two window widths, then ages out with its bucket.
  struct PopularityWindow {
    sim::Time width = 0;
    std::uint64_t cur_index = 0;
    std::unordered_map<cube::CubeId, std::uint64_t> cur;
    std::unordered_map<cube::CubeId, std::uint64_t> prev;

    void rotate_to(sim::Time at) {
      if (width == 0) return;
      const std::uint64_t idx =
          static_cast<std::uint64_t>(at) / static_cast<std::uint64_t>(width);
      if (idx == cur_index) return;
      if (idx == cur_index + 1) {
        prev = std::move(cur);
      } else {
        prev.clear();
      }
      cur.clear();
      cur_index = idx;
    }
    void note(sim::Time at, cube::CubeId u) {
      rotate_to(at);
      ++cur[u];
    }
    std::uint64_t count(sim::Time at, cube::CubeId u) const {
      if (width == 0) return 0;
      const std::uint64_t idx =
          static_cast<std::uint64_t>(at) / static_cast<std::uint64_t>(width);
      std::uint64_t n = 0;
      if (idx == cur_index) {
        if (const auto it = cur.find(u); it != cur.end()) n += it->second;
        if (const auto it = prev.find(u); it != prev.end()) n += it->second;
      } else if (idx == cur_index + 1) {
        if (const auto it = cur.find(u); it != cur.end()) n += it->second;
      }
      return n;
    }
  };

  enum class Mode { kTopDown, kPlan, kLevels };

  /// Target-side memo of one node's first scan for a request. Keeping the
  /// batch makes retransmitted T_QUERYs idempotent: a node always replays
  /// its original answer, never a rescan (whose room() could have changed).
  /// The batch is a pooled shared buffer: wire closures and the searcher's
  /// per-node buffer hold references instead of copies, and the memo drops
  /// its own reference after shipping when retransmission is off.
  struct Visit {
    sim::EndpointId peer = 0;
    std::size_t c1 = 0;       ///< matches found at first scan
    bool stop = false;        ///< control verdict computed at first scan
    bool truncated = false;   ///< the want limit cut matching objects off
    HitBatchPool::Batch batch;  ///< null when the scan found nothing
  };

  struct Request {
    std::uint64_t id = 0;
    KeywordSet query;
    std::size_t threshold = 0;
    sim::EndpointId searcher = 0;
    cube::CubeId root_cube = 0;
    sim::EndpointId root_peer = 0;
    bool root_resolved = false;
    /// A failover re-resolution of the root is in flight (dedup guard).
    bool failover_rerouting = false;
    /// Index mutation epoch captured at request creation. A summary cached
    /// under this epoch is invalidated by any later mutation, so a search
    /// that raced a mutation can never serve its stale plan to a successor.
    std::uint64_t epoch = 0;
    Mode mode = Mode::kTopDown;
    SearchStrategy strategy = SearchStrategy::kTopDownSequential;
    // Loss-tolerance state (all empty/0 when step_timeout == 0).
    std::unordered_map<cube::CubeId, Visit> visits;     // scanned nodes
    std::unordered_set<cube::CubeId> answered;          // coordinator dedup
    std::unordered_set<cube::CubeId> delivered;         // searcher dedup
    std::unordered_map<cube::CubeId, net::Transport::TimerId> step_timers;
    std::unordered_map<cube::CubeId, int> step_attempts;
    net::Transport::TimerId root_timer = 0;
    int root_attempts = 0;
    net::Transport::TimerId done_timer = 0;
    int done_attempts = 0;
    net::Transport::TimerId repair_timer = 0;
    int repair_attempts = 0;
    // kTopDown state: the paper's queue U of (node, dimension) pairs.
    std::deque<std::pair<cube::CubeId, int>> queue;
    // kPlan state: fixed visit order (cached contributors / bottom-up).
    std::vector<cube::CubeId> plan;
    std::size_t plan_pos = 0;
    bool plan_complete_means_complete = true;
    // kLevels state.
    std::vector<std::vector<cube::CubeId>> levels;
    std::size_t level = 0;
    std::size_t outstanding = 0;
    bool level_stop = false;
    // Common bookkeeping.
    std::size_t collected = 0;
    /// Cube nodes in dispatch order (root first). Hit batches buffered in
    /// node_hits are concatenated in this order at completion, making the
    /// hit sequence independent of message arrival order (and identical
    /// to the LogicalIndex traversal order on lossless runs).
    std::vector<cube::CubeId> visit_order;
    std::unordered_map<cube::CubeId, HitBatchPool::Batch> node_hits;
    std::vector<std::pair<cube::CubeId, std::uint32_t>> contributors;
    SearchStats stats;
    std::size_t results_expected = 0;
    std::size_t results_received = 0;
    bool done_received = false;
    bool stopped_early = false;
    bool record_in_cache = true;
    SearchCallback done;
  };

  /// Root-side state of a cumulative session: the paper's queue U plus the
  /// within-node consumption offset.
  struct CumulativeState {
    KeywordSet query;
    sim::EndpointId searcher = 0;
    cube::CubeId root_cube = 0;
    sim::EndpointId root_peer = 0;
    bool resolved = false;     ///< root peer located (first next() routes)
    bool root_scanned = false; ///< the root's own table consumed
    std::deque<std::pair<cube::CubeId, int>> queue;  // the paper's U
    bool mid_node = false;     ///< current node only partially returned
    cube::CubeId current = 0;
    std::size_t offset = 0;    ///< results already returned from `current`
    bool exhausted = false;
    // Per-next() call bookkeeping.
    std::size_t want = 0;
    std::size_t got = 0;
    std::vector<Hit> hits;
    SearchStats stats;
    std::size_t results_expected = 0;
    std::size_t results_received = 0;
    bool batch_done = false;
    SearchCallback done;
  };

  /// Coordinator state of one loss-guarded pin search (Config::step_timeout
  /// and Config::failover_after both set). The route + direct reply are
  /// guarded by one timer; a timeout re-routes from scratch, which lands on
  /// the surrogate owner if the original peer died mid-query.
  struct PinState {
    KeywordSet keywords;
    sim::EndpointId searcher = 0;
    int attempts = 0;
    net::Transport::TimerId timer = 0;
    SearchStats stats;  ///< accumulates messages/retransmits across attempts
    SearchCallback done;
  };

  PinState* find_pin(std::uint64_t pin_id);
  /// Sends (or resends) the guarded pin query and arms its timer.
  void pin_attempt(std::uint64_t pin_id);

  CumulativeState* find_session(std::uint64_t id);
  void cumulative_step(std::uint64_t session);
  /// Visits cube node `w` for the session: scans from the stored offset,
  /// ships up to the remaining want to the searcher, reports back.
  void cumulative_visit(std::uint64_t session, cube::CubeId w, int dim,
                        std::size_t offset);
  void cumulative_finish_batch(std::uint64_t session);
  void cumulative_maybe_complete(std::uint64_t session);

  PeerState& peer_state(sim::EndpointId ep) { return peers_[ep]; }

  // --- Hot-cell replication helpers (all no-ops unless cfg_.hot.enabled) ----

  /// Write-through: mirrors an index mutation into every live holder's
  /// replica table for `u`, keeping replicas byte-identical to the primary.
  void replica_add(cube::CubeId u, const KeywordSet& keywords, ObjectId o);
  void replica_remove(cube::CubeId u, const KeywordSet& keywords, ObjectId o);

  /// Whether `peer` currently holds a replica of cube node `u`.
  bool is_replica_holder(cube::CubeId u, sim::EndpointId peer) const;

  /// Round-robin spread: the replica holder that should serve the next
  /// visit of `w`, or 0 when the owner should (not replicated, or the
  /// cursor landed on the owner's slot). Skips unregistered holders.
  sim::EndpointId pick_replica(cube::CubeId w);

  /// Sends the T_QUERY for `w` directly to replica holder `peer` (the
  /// spread path of visit_node); the usual step timer covers loss, and a
  /// retransmission goes back through visit_node/pick_replica.
  void visit_replica(std::uint64_t req_id, cube::CubeId w,
                     sim::EndpointId peer);

  /// The table to scan for cube node `w` at `ps`: the primary table if
  /// present, else (hot replication only) the peer's replica copy.
  const IndexTable* table_at(const PeerState& ps, cube::CubeId w) const;

  /// Whether a T_QUERY for `w` arriving at `peer` can be answered there:
  /// true for the current owner (an empty table is then a real answer) and
  /// for a holder that still has a replica copy. False means the cell was
  /// demoted (or ownership moved) while the spread visit was in flight —
  /// the arrival must be dropped so the step timer re-picks a serving peer
  /// instead of memoizing a bogus empty scan.
  bool can_serve(sim::EndpointId peer, cube::CubeId w) const;

  /// Re-targets per-cell query-cache capacities in proportion to the
  /// popularity window, holding the total records budget constant.
  void rebalance_caches();

  /// Message-cost sink: invoked with the number of network messages a
  /// protocol step spent, routed to whichever stats object owns the
  /// operation (a Request or a CumulativeState) if it still exists.
  using Charge = std::function<void(std::size_t)>;

  /// Sends a protocol message to the peer playing cube node `target`,
  /// using a cached direct contact when available, otherwise routing
  /// through the DHT; `at_target(peer)` runs at the destination.
  /// `on_failover`, when non-null, fires if a cached contact turned out to
  /// be dead and the send fell back to DHT routing (the surrogate-owner
  /// step failover).
  void send_to_cube_node(sim::EndpointId from, cube::CubeId target,
                         const char* kind, std::size_t bytes,
                         const Charge& charge,
                         std::function<void(sim::EndpointId)> at_target,
                         const std::function<void()>& on_failover = nullptr);

  void start_top_down(Request& req);
  void step_top_down(std::uint64_t req_id);
  void step_plan(std::uint64_t req_id);
  void start_level(std::uint64_t req_id);
  /// Routes the initial query to the root's peer; retried on timeout.
  void begin_root_route(std::uint64_t req_id);
  /// Degraded-mode serving: re-resolves the root through the DHT and, if
  /// ownership moved (the root peer died), re-aims the coordinator at the
  /// surrogate owner and marks the request degraded.
  void failover_root(std::uint64_t req_id);
  /// Sends (or resends) the T_QUERY for node `w` and arms its step timer.
  void visit_node(std::uint64_t req_id, cube::CubeId w);
  /// Runs at the peer playing `w` when a T_QUERY arrives: scans once
  /// (memoized), ships the result batch to the searcher, answers the
  /// coordinator with T_CONT/T_STOP. Idempotent under retransmission.
  void on_query_arrived(std::uint64_t req_id, cube::CubeId w,
                        sim::EndpointId peer);
  /// First-scan memoization: scans `w` at `peer` for the request if this is
  /// the first arrival and — unless `ship` is false — ships the batch to
  /// the searcher (replaying the memoized batch on retransmitted arrivals).
  /// With ship=false the caller owns delivery (the VisitBatch path merges
  /// several nodes' batches into one message) and, when retransmission is
  /// off, releasing the memoized batches afterwards.
  Visit& ensure_scan(Request& req, cube::CubeId w, sim::EndpointId peer,
                     bool ship = true);
  /// Sends one merged VisitBatch message covering this round's cube nodes
  /// co-hosted at `peer`, arming the usual per-node step timers.
  void send_visit_batch(std::uint64_t req_id, sim::EndpointId peer,
                        const std::vector<cube::CubeId>& nodes);
  /// Runs at the co-host peer: scans every node of the batch (memoized),
  /// ships one merged result message to the searcher and one merged
  /// control reply to the coordinator. Idempotent under retransmission.
  void on_visit_batch_arrived(std::uint64_t req_id,
                              const std::vector<cube::CubeId>& nodes,
                              sim::EndpointId peer);
  /// Concatenates the buffered per-node batches in visit order.
  std::vector<Hit> assemble_hits(const Request& req) const;
  void on_results(std::uint64_t req_id, cube::CubeId w,
                  const HitBatchPool::Batch& batch);
  void on_node_answered(std::uint64_t req_id, cube::CubeId w,
                        sim::EndpointId peer, std::size_t c1);
  void arm_step_timer(std::uint64_t req_id, cube::CubeId w);
  /// Sends (or resends) the final done notification to the searcher.
  void send_done(std::uint64_t req_id);
  /// Re-ships result batches the searcher is still missing after done.
  void arm_repair_timer(std::uint64_t req_id);
  /// Gives up on the request: cancels timers, delivers partial hits with
  /// stats.failed set, erases the request.
  void abort_request(std::uint64_t req_id);
  /// Cancels every pending timer owned by the request.
  void release_timers(Request& req);
  void finish(std::uint64_t req_id);
  void maybe_complete(std::uint64_t req_id);
  Request* find(std::uint64_t req_id);
  void emit(std::uint64_t request, const char* point, std::uint64_t a = 0,
            std::uint64_t b = 0) {
    if (trace_) trace_(Trace{request, point, a, b});
  }

  std::size_t room(const Request& req) const;

  /// Delay before the timer guarding attempt `attempt` (1-based) of a
  /// protocol step fires. Attempt 1 = step_timeout exactly, no RNG draw;
  /// later attempts back off exponentially to backoff_cap plus jitter.
  sim::Time resend_delay(int attempt);

  dht::Dolr& dolr_;
  dht::Overlay& overlay_;
  net::Transport& net_;
  Config cfg_;
  cube::Hypercube cube_;
  KeywordHasher hasher_;
  std::unordered_map<sim::EndpointId, PeerState> peers_;
  /// Recycled scan buffers for Visit::batch (see hit_pool.hpp). Mutable
  /// bookkeeping only; lookups stay logically const.
  HitBatchPool hit_pool_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Request>> requests_;
  std::unordered_map<std::uint64_t, std::unique_ptr<CumulativeState>>
      sessions_;
  std::unordered_map<std::uint64_t, std::unique_ptr<PinState>> pins_;
  std::uint64_t next_request_ = 1;
  std::uint64_t next_session_ = 1;
  std::uint64_t next_pin_ = 1;
  std::uint64_t mutation_epoch_ = 0;
  TraceFn trace_;
  /// Jitter stream for backed-off retransmissions. Dedicated (never shared
  /// with hashing or the fabric's latency stream) so enabling backoff
  /// cannot perturb any other seeded draw sequence.
  Rng backoff_rng_;
  // Hot-cell replication state (empty unless cfg_.hot.enabled).
  std::unordered_map<cube::CubeId, ReplicaSet> replicas_;
  PopularityWindow popularity_;
  std::uint64_t replica_promotions_ = 0;
  std::uint64_t replica_demotions_ = 0;
  std::uint64_t replica_spread_visits_ = 0;
  std::uint64_t replica_entries_copied_ = 0;
};

}  // namespace hkws::index
