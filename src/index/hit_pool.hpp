// Recycled per-query hit buffers for the serving hot path. Superset
// serving used to allocate one std::vector<Hit> per node scan and copy it
// into every wire closure (direct results, coalesced batch results, repair
// re-ships); under sustained load the allocator and the copies dominated
// the profile. The pool hands out shared_ptr batches instead: a scan fills
// one buffer once and every closure shares it by pointer, and when the
// last reference drops the buffer returns to the free list with its
// capacity intact, so steady-state serving allocates nothing.
//
// The recycling deleter holds the free list via shared_ptr, so in-flight
// messages may safely outlive the pool's owner — teardown destroys the
// index before the event queue drains its remaining closures.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "index/index_table.hpp"

namespace hkws::index {

class HitBatchPool {
 public:
  using Batch = std::shared_ptr<std::vector<Hit>>;

  /// An empty buffer, recycled when one is available. Treat the contents as
  /// immutable once the batch has been shared with a wire closure: every
  /// holder reads the same vector.
  Batch acquire() {
    std::vector<Hit>* raw = nullptr;
    if (core_->free.empty()) {
      raw = new std::vector<Hit>();
    } else {
      raw = core_->free.back().release();
      core_->free.pop_back();
    }
    return Batch(raw, Recycle{core_});
  }

  /// Buffers currently parked in the free list (introspection for tests).
  std::size_t idle() const noexcept { return core_->free.size(); }

 private:
  struct Core {
    std::vector<std::unique_ptr<std::vector<Hit>>> free;
  };

  /// Bound on parked buffers: beyond it a released buffer is freed outright
  /// so one burst cannot pin its peak memory forever.
  static constexpr std::size_t kMaxIdle = 256;

  struct Recycle {
    std::shared_ptr<Core> core;
    void operator()(std::vector<Hit>* p) const {
      if (core->free.size() < kMaxIdle) {
        p->clear();  // keeps capacity: the next scan reuses the allocation
        core->free.emplace_back(p);
      } else {
        delete p;
      }
    }
  };

  std::shared_ptr<Core> core_ = std::make_shared<Core>();
};

}  // namespace hkws::index
