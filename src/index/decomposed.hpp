// Decomposed indexing (paper §3.4, last remark): instead of one large
// hypercube over the whole keyword space, the keyword set is partitioned
// into disjoint groups (e.g. attribute categories), each indexed by its own
// smaller hypercube. A smaller dimension means a smaller subhypercube per
// query and hence cheaper search.
//
// Placement uses the *projection* of an object's keyword set onto a group,
// while the stored entry carries the full keyword set as payload (an index
// entry is metadata; the paper's entries already carry K_sigma). A query is
// answered by the group holding its largest (most selective) projection and
// post-filtered against the full keyword sets, so multi-group queries stay
// correct.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/keyword.hpp"
#include "index/logical_index.hpp"

namespace hkws::index {

class DecomposedIndex {
 public:
  /// Assigns every keyword to a group in [0, group_count).
  using GroupFn = std::function<std::size_t(const Keyword&)>;

  struct GroupSpec {
    int r = 8;  ///< dimension of this group's hypercube
  };

  /// @param groups    one spec per group; at least one
  /// @param group_fn  keyword -> group id; must be < groups.size()
  DecomposedIndex(std::vector<GroupSpec> groups, GroupFn group_fn,
                  std::uint64_t hash_seed = seeds::kKeywordHash);

  /// Convenience partition: keywords are hashed uniformly over `groups`
  /// equal cubes of dimension r.
  static DecomposedIndex hashed(std::size_t groups, int r,
                                std::uint64_t hash_seed = seeds::kKeywordHash);

  void insert(ObjectId object, const KeywordSet& keywords);
  bool remove(ObjectId object, const KeywordSet& keywords);

  /// Pin search across the decomposition (exact full keyword set).
  SearchResult pin_search(const KeywordSet& keywords);

  /// Superset search: answered by the group with the most selective
  /// projection, post-filtered to full-query containment.
  SearchResult superset_search(const KeywordSet& query,
                               std::size_t threshold = 0,
                               SearchStrategy strategy =
                                   SearchStrategy::kTopDownSequential);

  std::size_t group_count() const noexcept { return cubes_.size(); }
  std::size_t group_of(const Keyword& w) const { return group_fn_(w); }

  /// Projection of `keywords` onto group `g`.
  KeywordSet projection(const KeywordSet& keywords, std::size_t g) const;

  const LogicalIndex& group_cube(std::size_t g) const { return *cubes_.at(g); }

 private:
  std::vector<std::unique_ptr<LogicalIndex>> cubes_;
  GroupFn group_fn_;
  /// Payload metadata: the full keyword set each object was inserted with
  /// (in a deployment this rides inside the index entry itself).
  std::unordered_map<ObjectId, KeywordSet> full_sets_;
};

}  // namespace hkws::index
