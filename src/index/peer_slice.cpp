#include "index/peer_slice.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <variant>

namespace hkws::index {
namespace {

constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);

/// The searcher's initiation leash is longer than one protocol step: the
/// coordinator's whole traversal (many sequential visits, each with its own
/// retransmission budget) happens between the initiation and the reply.
constexpr net::Time kInitLeash = 8;

std::size_t room_left(std::size_t threshold, std::size_t have) {
  if (threshold == 0) return kUnlimited;
  return threshold > have ? threshold - have : 0;
}

std::vector<net::WireHit> to_wire(const std::vector<Hit>& hits) {
  std::vector<net::WireHit> out;
  out.reserve(hits.size());
  for (const Hit& h : hits)
    out.push_back(net::WireHit{h.object, h.keywords.words()});
  return out;
}

std::vector<Hit> from_wire(const std::vector<net::WireHit>& hits) {
  std::vector<Hit> out;
  out.reserve(hits.size());
  for (const net::WireHit& h : hits)
    out.push_back(Hit{h.object, KeywordSet(h.keywords)});
  return out;
}

}  // namespace

PeerSlice::PeerSlice(net::Transport& net, Config cfg)
    : net_(net),
      cfg_(cfg),
      cube_(cfg.r),
      hasher_(cfg.r, cfg.hash_seed),
      space_(cfg.ring_bits) {
  if (cfg_.procs < 1 || cfg_.rank < 0 || cfg_.rank >= cfg_.procs)
    throw std::invalid_argument("PeerSlice: rank out of range");
  if (cfg_.n_peers < static_cast<net::EndpointId>(cfg_.procs))
    throw std::invalid_argument("PeerSlice: need at least one peer per rank");

  // Salted-hash ring placement (ChordNetwork's collision-bumping idiom),
  // derived identically by every process from the shared config — the
  // ownership map needs no bootstrap traffic.
  std::map<dht::RingId, net::EndpointId> ring;
  for (net::EndpointId ep = 1; ep <= cfg_.n_peers; ++ep) {
    std::uint64_t salt = 0;
    dht::RingId pos = 0;
    do {
      pos = space_.clamp(
          mix64(mix64(ep ^ seeds::kNodeId ^ cfg_.node_seed) + salt));
      ++salt;
    } while (ring.count(pos) != 0);
    ring.emplace(pos, ep);
  }
  ring_.assign(ring.begin(), ring.end());

  home_ = static_cast<net::EndpointId>(cfg_.rank) + 1;
  for (net::EndpointId ep = 1; ep <= cfg_.n_peers; ++ep)
    if (local_peer(ep)) net_.register_endpoint(ep);

  net_.set_payload_handler(
      [this](net::EndpointId from, net::EndpointId to, net::MsgKind kind,
             const net::WireMessage& msg) { on_payload(from, to, kind, msg); });
}

PeerSlice::~PeerSlice() { net_.set_payload_handler({}); }

net::EndpointId PeerSlice::peer_of(cube::CubeId u) const {
  const dht::RingId key = space_.clamp(mix64(u ^ cfg_.ring_salt));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const std::pair<dht::RingId, net::EndpointId>& e, dht::RingId k) {
        return e.first < k;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap: successor of the max
  return it->second;
}

std::size_t PeerSlice::collect_local(cube::CubeId u, const KeywordSet& query,
                                     std::size_t room,
                                     std::vector<Hit>& out) const {
  if (room == 0) return 0;
  auto it = tables_.find(u);
  if (it == tables_.end()) return 0;
  std::size_t appended = 0;
  it->second.for_each_superset(
      query, [&](const KeywordSet& k, const std::set<ObjectId>& objects) {
        for (ObjectId o : objects) {
          if (appended >= room) return false;
          out.push_back(Hit{o, k});
          ++appended;
        }
        return appended < room;
      });
  return appended;
}

void PeerSlice::arm(net::Transport::TimerId& slot, net::Time delay,
                    std::function<void()> fn) {
  slot = cfg_.step_timeout > 0 ? net_.set_timer(delay, std::move(fn)) : 0;
}

// --- Object maintenance -----------------------------------------------------

void PeerSlice::publish(ObjectId object, const KeywordSet& keywords,
                        AckCallback acked) {
  if (keywords.empty())
    throw std::invalid_argument("PeerSlice::publish: empty keyword set");
  start_entry(net::MsgKind::kKwsInsert, object, keywords, std::move(acked));
}

void PeerSlice::withdraw(ObjectId object, const KeywordSet& keywords,
                         AckCallback acked) {
  if (keywords.empty())
    throw std::invalid_argument("PeerSlice::withdraw: empty keyword set");
  start_entry(net::MsgKind::kKwsDelete, object, keywords, std::move(acked));
}

void PeerSlice::start_entry(net::MsgKind kind, ObjectId object,
                            const KeywordSet& keywords, AckCallback acked) {
  net_.schedule_in(0, [this, kind, object, keywords,
                       acked = std::move(acked)]() mutable {
    const std::uint64_t id = fresh_id();
    net::EntryMsg m;
    m.object = object;
    m.keywords = keywords.words();
    m.request = id;
    m.publisher = home_;
    PendingAck& p = pubs_[id];
    p.to = peer_of(hasher_.responsible_node(keywords));
    p.kind = kind;
    p.msg = net::WireMessage{std::move(m)};
    p.cb = std::move(acked);
    net_.send_payload(home_, p.to, p.kind, p.msg);
    arm(p.timer, cfg_.step_timeout, [this, id] { on_ack_timeout(id); });
  });
}

void PeerSlice::on_ack_timeout(std::uint64_t id) {
  auto it = pubs_.find(id);
  if (it == pubs_.end()) return;
  PendingAck& p = it->second;
  if (p.retries >= cfg_.max_retries) {
    // Budget exhausted. Fire the callback anyway — an ack barrier must
    // terminate; the entry may or may not have been applied.
    AckCallback cb = std::move(p.cb);
    pubs_.erase(it);
    if (cb) cb();
    return;
  }
  ++p.retries;
  ++p.retransmits;
  net_.send_payload(home_, p.to, p.kind, p.msg);
  arm(p.timer, cfg_.step_timeout, [this, id] { on_ack_timeout(id); });
}

void PeerSlice::on_entry(net::EndpointId to, net::MsgKind kind,
                         const net::EntryMsg& m) {
  if (m.keywords.empty()) return;  // no node is responsible
  const KeywordSet k(m.keywords);
  const cube::CubeId u = hasher_.responsible_node(k);
  if (kind == net::MsgKind::kKwsInsert) {
    tables_[u].add(k, m.object);  // duplicate retransmits are absorbed
  } else if (auto it = tables_.find(u); it != tables_.end()) {
    it->second.remove(k, m.object);
  }
  if (m.request != 0)
    net_.send_payload(to, m.publisher, net::MsgKind::kKwsDone,
                      net::WireMessage{net::DoneMsg{m.request, 0}});
}

void PeerSlice::on_done(const net::DoneMsg& m) {
  if (auto it = pubs_.find(m.request); it != pubs_.end()) {
    if (it->second.timer != 0) net_.cancel_timer(it->second.timer);
    AckCallback cb = std::move(it->second.cb);
    pubs_.erase(it);
    if (cb) cb();
    return;
  }
  if (auto it = done_replies_.find(m.request); it != done_replies_.end()) {
    if (it->second.timer != 0) net_.cancel_timer(it->second.timer);
    it->second.timer = 0;
    it->second.acked = true;  // the tombstone stays: see DoneReply
  }
}

// --- Pin search -------------------------------------------------------------

void PeerSlice::pin_search(const KeywordSet& keywords, SearchCallback done) {
  if (keywords.empty())
    throw std::invalid_argument("PeerSlice::pin_search: empty keyword set");
  net_.schedule_in(0, [this, keywords, done = std::move(done)]() mutable {
    const std::uint64_t id = fresh_id();
    PendingSearch& p = pins_[id];
    p.to = peer_of(hasher_.responsible_node(keywords));
    p.kind = net::MsgKind::kKwsPin;
    p.msg = net::WireMessage{net::PinMsg{id, home_, keywords.words()}};
    p.cb = std::move(done);
    net_.send_payload(home_, p.to, p.kind, p.msg);
    arm(p.timer, cfg_.step_timeout, [this, id] { on_pin_timeout(id); });
  });
}

void PeerSlice::on_pin(net::EndpointId to, const net::PinMsg& m) {
  const KeywordSet k(m.keywords);
  const cube::CubeId u = hasher_.responsible_node(k);
  net::HitsMsg reply;
  reply.request = m.request;
  reply.node = u;
  if (auto it = tables_.find(u); it != tables_.end())
    for (ObjectId o : it->second.exact(k))
      reply.hits.push_back(net::WireHit{o, k.words()});
  net_.send_payload(to, m.searcher, net::MsgKind::kKwsPinReply,
                    net::WireMessage{std::move(reply)});
}

void PeerSlice::on_pin_reply(const net::HitsMsg& m) {
  auto it = pins_.find(m.request);
  if (it == pins_.end()) return;  // late duplicate; first reply won
  if (it->second.timer != 0) net_.cancel_timer(it->second.timer);
  SearchResult result;
  result.hits = from_wire(m.hits);
  result.stats.nodes_contacted = 1;
  result.stats.messages = 2;
  result.stats.rounds = 1;
  result.stats.complete = true;
  result.stats.retransmits = it->second.retransmits;
  SearchCallback cb = std::move(it->second.cb);
  pins_.erase(it);
  if (cb) cb(std::move(result));
}

void PeerSlice::on_pin_timeout(std::uint64_t id) {
  auto it = pins_.find(id);
  if (it == pins_.end()) return;
  PendingSearch& p = it->second;
  if (p.retries >= cfg_.max_retries) {
    SearchResult result;
    result.stats.failed = true;
    result.stats.retransmits = p.retransmits;
    SearchCallback cb = std::move(p.cb);
    pins_.erase(it);
    if (cb) cb(std::move(result));
    return;
  }
  ++p.retries;
  ++p.retransmits;
  net_.send_payload(home_, p.to, p.kind, p.msg);
  arm(p.timer, cfg_.step_timeout, [this, id] { on_pin_timeout(id); });
}

// --- Superset search: the searcher -----------------------------------------

void PeerSlice::superset_search(const KeywordSet& query, std::size_t threshold,
                                SearchCallback done) {
  if (query.empty())
    throw std::invalid_argument("PeerSlice::superset_search: empty query");
  net_.schedule_in(0, [this, query, threshold,
                       done = std::move(done)]() mutable {
    const std::uint64_t id = fresh_id();
    const cube::CubeId root = hasher_.responsible_node(query);
    PendingSearch& p = searches_[id];
    p.to = peer_of(root);
    p.kind = net::MsgKind::kKwsTQuery;
    p.msg = net::WireMessage{
        net::QueryMsg{id, root, home_, static_cast<std::uint64_t>(threshold),
                      0, query.words()}};
    p.cb = std::move(done);
    net_.send_payload(home_, p.to, p.kind, p.msg);
    arm(p.timer, cfg_.step_timeout * kInitLeash,
        [this, id] { on_search_timeout(id); });
  });
}

void PeerSlice::on_search_timeout(std::uint64_t id) {
  auto it = searches_.find(id);
  if (it == searches_.end()) return;
  PendingSearch& p = it->second;
  if (p.retries >= cfg_.max_retries) {
    SearchResult result;
    result.stats.failed = true;
    result.stats.retransmits = p.retransmits;
    SearchCallback cb = std::move(p.cb);
    searches_.erase(it);
    if (cb) cb(std::move(result));
    return;
  }
  ++p.retries;
  ++p.retransmits;
  net_.send_payload(home_, p.to, p.kind, p.msg);
  arm(p.timer, cfg_.step_timeout * kInitLeash,
      [this, id] { on_search_timeout(id); });
}

void PeerSlice::on_search_reply(net::EndpointId from, net::EndpointId to,
                                const net::SearchReplyMsg& m) {
  // Always ack — a duplicate reply after our entry is gone means the
  // coordinator never saw the previous ack.
  net_.send_payload(to, from, net::MsgKind::kKwsDone,
                    net::WireMessage{net::DoneMsg{m.request, 0}});
  auto it = searches_.find(m.request);
  if (it == searches_.end()) return;
  if (it->second.timer != 0) net_.cancel_timer(it->second.timer);
  SearchResult result;
  result.hits = from_wire(m.hits);
  result.stats.nodes_contacted = static_cast<std::size_t>(m.nodes_contacted);
  result.stats.messages = static_cast<std::size_t>(m.messages);
  result.stats.rounds = static_cast<std::size_t>(m.rounds);
  result.stats.retransmits =
      static_cast<std::size_t>(m.retransmits) + it->second.retransmits;
  result.stats.complete = m.complete;
  result.stats.failed = m.failed;
  SearchCallback cb = std::move(it->second.cb);
  searches_.erase(it);
  if (cb) cb(std::move(result));
}

// --- Superset search: visited nodes ----------------------------------------

void PeerSlice::on_query(net::EndpointId to, const net::QueryMsg& m) {
  if (m.query.empty()) return;
  const KeywordSet query(m.query);
  // The coordinator scans the root locally and only ever visits proper
  // subcube descendants, so node == F_h(query) identifies an initiation.
  if (m.node == hasher_.responsible_node(query))
    start_coordination(to, m);
  else
    serve_visit(to, m);
}

void PeerSlice::serve_visit(net::EndpointId to, const net::QueryMsg& m) {
  const KeywordSet query(m.query);
  const std::size_t room =
      m.want == 0 ? kUnlimited : static_cast<std::size_t>(m.want);
  std::vector<Hit> hits;
  const std::size_t c1 = collect_local(m.node, query, room, hits);
  if (c1 > 0)
    net_.send_payload(
        to, m.searcher, net::MsgKind::kKwsResults,
        net::WireMessage{net::HitsMsg{m.request, m.node, to_wire(hits)}});
  // collect_local caps c1 at room, so c1 == want iff this visit met the
  // searcher's remaining threshold (LogicalIndex's stop condition).
  const bool stop = m.want != 0 && c1 >= static_cast<std::size_t>(m.want);
  net_.send_payload(
      to, m.searcher, stop ? net::MsgKind::kKwsTStop : net::MsgKind::kKwsTCont,
      net::WireMessage{net::ControlMsg{m.request, m.node,
                                       static_cast<std::uint64_t>(c1), stop}});
}

// --- Superset search: the coordinator ---------------------------------------

void PeerSlice::start_coordination(net::EndpointId to, const net::QueryMsg& m) {
  const std::uint64_t id = m.request;
  if (auto done = done_replies_.find(id); done != done_replies_.end()) {
    send_reply(id, done->second);  // stale initiation retransmit
    return;
  }
  if (coords_.count(id) != 0) return;  // in progress; the reply will come

  Coordination& c = coords_[id];
  c.query = KeywordSet(m.query);
  c.root = m.node;
  c.threshold = static_cast<std::size_t>(m.want);
  c.searcher = m.searcher;
  c.self = to;
  c.stats.nodes_contacted = 1;  // the root
  c.stats.messages = 1;         // T_QUERY from the searcher to the root

  // Root examines its own table first. It is local by construction: the
  // searcher addressed the initiation to the root's serving peer with the
  // same deterministic ownership map.
  const std::size_t at_root =
      collect_local(c.root, c.query, room_left(c.threshold, 0), c.hits);
  if (at_root > 0) c.stats.messages += 1;  // results to the searcher

  const bool done_at_root = c.threshold != 0 && c.hits.size() >= c.threshold;
  if (!done_at_root)
    for (int i : cube_.zero_positions(c.root))
      c.queue.emplace_back(c.root | (1ULL << i), i);
  c.stopped_early = done_at_root && cube_.subcube_size(c.root) > 1;
  advance(id);
}

void PeerSlice::advance(std::uint64_t id) {
  auto it = coords_.find(id);
  if (it == coords_.end()) return;
  Coordination& c = it->second;
  if (c.queue.empty()) {
    finish(id, false);
    return;
  }
  const auto [w, d] = c.queue.front();
  c.queue.pop_front();
  ++c.stats.rounds;
  ++c.stats.nodes_contacted;
  ++c.stats.messages;  // T_QUERY(v -> w)
  const std::size_t room = room_left(c.threshold, c.hits.size());
  c.visiting = true;
  c.visit_node = w;
  c.visit_dim = d;
  c.visit_want = room == kUnlimited ? 0 : static_cast<std::uint64_t>(room);
  c.have_control = false;
  c.have_results = false;
  c.control_count = 0;
  c.control_stop = false;
  c.results.clear();
  c.retries = 0;
  send_visit(id, c);
  arm(c.timer, cfg_.step_timeout, [this, id] { on_visit_timeout(id); });
}

void PeerSlice::send_visit(std::uint64_t id, Coordination& c) {
  net_.send_payload(c.self, peer_of(c.visit_node), net::MsgKind::kKwsTQuery,
                    net::WireMessage{net::QueryMsg{id, c.visit_node, c.self,
                                                   c.visit_want, 0,
                                                   c.query.words()}});
}

void PeerSlice::on_results(const net::HitsMsg& m) {
  auto it = coords_.find(m.request);
  if (it == coords_.end()) return;
  Coordination& c = it->second;
  if (!c.visiting || m.node != c.visit_node || c.have_results) return;
  c.results = from_wire(m.hits);
  c.have_results = true;
  try_complete_step(m.request, c);
}

void PeerSlice::on_control(const net::ControlMsg& m) {
  auto it = coords_.find(m.request);
  if (it == coords_.end()) return;
  Coordination& c = it->second;
  if (!c.visiting || m.node != c.visit_node || c.have_control) return;
  c.have_control = true;
  c.control_count = m.count;
  c.control_stop = m.stop;
  try_complete_step(m.request, c);
}

void PeerSlice::try_complete_step(std::uint64_t id, Coordination& c) {
  if (!c.have_control) return;
  if (c.control_count > 0 && !c.have_results) return;  // results in flight
  if (c.timer != 0) {
    net_.cancel_timer(c.timer);
    c.timer = 0;
  }
  c.visiting = false;

  if (c.control_count > 0) {
    c.stats.messages += 1;  // results (w -> coordinator)
    c.hits.insert(c.hits.end(), c.results.begin(), c.results.end());
  }
  if (c.control_stop) {
    c.stats.messages += 1;  // T_STOP(w -> v)
    c.stopped_early = !c.queue.empty();
    finish(id, false);
    return;
  }
  c.stats.messages += 1;  // T_CONT(w -> v)
  for (int i : cube_.zero_positions(c.visit_node)) {
    if (i >= c.visit_dim) break;  // zero_positions is ascending
    c.queue.emplace_back(c.visit_node | (1ULL << i), i);
  }
  advance(id);
}

void PeerSlice::on_visit_timeout(std::uint64_t id) {
  auto it = coords_.find(id);
  if (it == coords_.end()) return;
  Coordination& c = it->second;
  if (!c.visiting) return;
  if (c.retries >= cfg_.max_retries) {
    finish(id, true);  // step dead: ship the searcher what arrived
    return;
  }
  ++c.retries;
  ++c.stats.retransmits;
  send_visit(id, c);
  arm(c.timer, cfg_.step_timeout, [this, id] { on_visit_timeout(id); });
}

void PeerSlice::finish(std::uint64_t id, bool failed) {
  auto it = coords_.find(id);
  if (it == coords_.end()) return;
  Coordination& c = it->second;
  if (c.timer != 0) {
    net_.cancel_timer(c.timer);
    c.timer = 0;
  }
  c.stats.failed = failed;
  c.stats.complete = !failed && !c.stopped_early;
  c.stats.messages += 1;  // the final reply (OverlayIndex's done convention)

  DoneReply& d = done_replies_[id];
  d.searcher = c.searcher;
  d.self = c.self;
  d.reply.request = id;
  d.reply.nodes_contacted = c.stats.nodes_contacted;
  d.reply.messages = c.stats.messages;
  d.reply.rounds = c.stats.rounds;
  d.reply.retransmits = c.stats.retransmits;
  d.reply.complete = c.stats.complete;
  d.reply.failed = failed;
  d.reply.hits = to_wire(c.hits);
  coords_.erase(it);
  send_reply(id, d);
  arm(d.timer, cfg_.step_timeout, [this, id] { on_reply_timeout(id); });
}

void PeerSlice::send_reply(std::uint64_t id, DoneReply& d) {
  (void)id;
  net_.send_payload(d.self, d.searcher, net::MsgKind::kKwsSReply,
                    net::WireMessage{d.reply});
}

void PeerSlice::on_reply_timeout(std::uint64_t id) {
  auto it = done_replies_.find(id);
  if (it == done_replies_.end()) return;
  DoneReply& d = it->second;
  if (d.acked || d.retries >= cfg_.max_retries) {
    d.timer = 0;  // give up resending; the tombstone still answers dups
    return;
  }
  ++d.retries;
  send_reply(id, d);
  arm(d.timer, cfg_.step_timeout, [this, id] { on_reply_timeout(id); });
}

// --- Dispatch ---------------------------------------------------------------

void PeerSlice::on_payload(net::EndpointId from, net::EndpointId to,
                           net::MsgKind kind, const net::WireMessage& msg) {
  switch (kind) {
    case net::MsgKind::kKwsInsert:
    case net::MsgKind::kKwsDelete:
      if (const auto* m = std::get_if<net::EntryMsg>(&msg))
        on_entry(to, kind, *m);
      break;
    case net::MsgKind::kKwsPin:
      if (const auto* m = std::get_if<net::PinMsg>(&msg)) on_pin(to, *m);
      break;
    case net::MsgKind::kKwsPinReply:
      if (const auto* m = std::get_if<net::HitsMsg>(&msg)) on_pin_reply(*m);
      break;
    case net::MsgKind::kKwsTQuery:
      if (const auto* m = std::get_if<net::QueryMsg>(&msg)) on_query(to, *m);
      break;
    case net::MsgKind::kKwsResults:
      if (const auto* m = std::get_if<net::HitsMsg>(&msg)) on_results(*m);
      break;
    case net::MsgKind::kKwsTCont:
    case net::MsgKind::kKwsTStop:
      if (const auto* m = std::get_if<net::ControlMsg>(&msg)) on_control(*m);
      break;
    case net::MsgKind::kKwsSReply:
      if (const auto* m = std::get_if<net::SearchReplyMsg>(&msg))
        on_search_reply(from, to, *m);
      break;
    case net::MsgKind::kKwsDone:
      if (const auto* m = std::get_if<net::DoneMsg>(&msg)) on_done(*m);
      break;
    default:
      break;  // not a split-overlay message
  }
}

// --- Introspection -----------------------------------------------------------

std::size_t PeerSlice::local_object_count() const {
  std::size_t total = 0;
  for (const auto& [u, table] : tables_) total += table.object_count();
  return total;
}

std::size_t PeerSlice::local_table_count() const {
  std::size_t total = 0;
  for (const auto& [u, table] : tables_)
    if (!table.empty()) ++total;
  return total;
}

}  // namespace hkws::index
