// Shared vocabulary of the search operations (paper §2.2, §3.3):
// strategies, per-query cost accounting, and results.
#pragma once

#include <cstddef>
#include <vector>

#include "index/index_table.hpp"

namespace hkws::index {

/// How the subhypercube of a superset search is explored.
enum class SearchStrategy {
  /// The paper's main algorithm: root-coordinated breadth-first descent of
  /// the spanning binomial tree, one node at a time, general objects first.
  kTopDownSequential,
  /// The §3.3 variant preferring specific objects: deepest tree levels
  /// first, root-coordinated, one node at a time.
  kBottomUpSequential,
  /// The §3.5 speed-up: all nodes of an SBT level are queried in parallel;
  /// latency drops to r - |One(F_h(K))| rounds at the same message cost.
  kLevelParallel,
};

/// Cost accounting for one search operation, in the paper's units.
struct SearchStats {
  /// Hypercube nodes that received the query (including the root).
  std::size_t nodes_contacted = 0;
  /// Messages: T_QUERY per contacted node, T_CONT/T_STOP coordination
  /// replies, and one result delivery per contributing node.
  std::size_t messages = 0;
  /// Sequential steps (the time proxy for sequential strategies).
  std::size_t rounds = 0;
  /// Tree levels explored (the time proxy for kLevelParallel).
  std::size_t levels = 0;
  /// Whether the root answered the traversal plan from its query cache.
  bool cache_hit = false;
  /// Whether the whole subhypercube was covered (results are exhaustive).
  bool complete = false;
  /// Protocol-message retransmissions triggered by loss timeouts (always 0
  /// on a lossless network or with retransmission disabled).
  std::size_t retransmits = 0;
  /// Co-host coalescing (level-parallel only): merged VisitBatch wire
  /// messages sent, and logical node visits that rode one. Each batch of n
  /// visits replaces n T_QUERYs, up to n result messages, and n control
  /// replies with at most three messages.
  std::size_t coalesced_batches = 0;
  std::size_t coalesced_visits = 0;
  /// The protocol gave up: some step exhausted its retransmission budget.
  /// Hits hold whatever had arrived; `complete` is false.
  bool failed = false;
  /// Mid-query failovers: protocol steps re-aimed at a surrogate owner (or
  /// served by only one cube of a mirrored pair) because the original
  /// serving peer died. 0 on a stable membership.
  std::size_t failovers = 0;
  /// The search was served but crossed a failover: some serving peer died
  /// mid-query and a surrogate/mirror answered instead, so the result may
  /// silently miss entries that were lost with the peer and not yet
  /// repaired. Completeness verdict: failed > degraded > complete.
  bool degraded = false;
};

/// Result of a pin or superset search.
struct SearchResult {
  std::vector<Hit> hits;
  SearchStats stats;
};

}  // namespace hkws::index
